package daemon

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/promtext"
)

// Check is one doctor finding.
type Check struct {
	Name   string // short slug, e.g. "data-dir-writable"
	OK     bool
	Detail string // what was verified, or what is wrong and how to fix it
	// Advisory marks a failure that should not fail the doctor's exit
	// status: the daemon would still run correctly, just degraded.
	Advisory bool
}

// Doctor runs preflight checks for a daemon config without starting
// one: directory permissions, real fsync capability on the data dir's
// filesystem, and whether the configured ports can be bound. It returns
// every check (pass and fail) so `quicksand doctor` can print a full
// bill of health; the caller fails if any Check.OK is false.
func Doctor(cfg Config) []Check {
	cfg = cfg.withDefaults()
	var out []Check

	if err := cfg.Validate(); err != nil {
		out = append(out, Check{Name: "config", OK: false, Detail: err.Error()})
	} else {
		out = append(out, Check{Name: "config", OK: true, Detail: fmt.Sprintf("node %d of %d replicas, %d shard(s)", cfg.Node, cfg.Replicas, cfg.Shards)})
	}

	if cfg.DataDir == "" {
		out = append(out, Check{Name: "data-dir", OK: true, Detail: "no data_dir configured: running memory-only (no durability)"})
	} else {
		out = append(out, checkDataDir(cfg.DataDir), checkFsync(cfg.DataDir),
			checkFreeDisk(cfg.DataDir, cfg.MinFreeDisk))
	}

	out = append(out, checkBind("http-port", cfg.HTTPListen))
	out = append(out, checkBind("peer-port", cfg.PeerListen))

	for i, addr := range cfg.Peers {
		if i == cfg.Node {
			continue
		}
		out = append(out, checkPeerReachable(i, addr))
	}
	out = append(out, checkMetricsScrape(cfg.HTTPListen))
	return out
}

// checkMetricsScrape probes a running daemon's /metrics on the
// configured HTTP address: scrape duration, payload size, and a strict
// parse of the exposition format. No daemon listening is advisory —
// doctor usually runs preflight, before the daemon is up — but a
// daemon that answers with an unparsable /metrics is a hard failure:
// every scraper pointed at it is quietly broken.
func checkMetricsScrape(addr string) Check {
	const name = "metrics-scrape"
	hc := &http.Client{Timeout: 3 * time.Second}
	start := time.Now()
	resp, err := hc.Get("http://" + addr + "/metrics")
	if err != nil {
		return Check{Name: name, Advisory: true, Detail: fmt.Sprintf("no daemon answering on %s (fine preflight; rerun with one up to audit its metrics)", addr)}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	took := time.Since(start).Round(time.Microsecond)
	if err != nil {
		return Check{Name: name, Detail: fmt.Sprintf("reading /metrics from %s: %v", addr, err)}
	}
	if resp.StatusCode != http.StatusOK {
		return Check{Name: name, Detail: fmt.Sprintf("/metrics on %s returned %s", addr, resp.Status)}
	}
	fams, err := promtext.Parse(string(body))
	if err != nil {
		return Check{Name: name, Detail: fmt.Sprintf("/metrics on %s is not valid exposition text: %v", addr, err)}
	}
	if err := promtext.Validate(fams); err != nil {
		return Check{Name: name, Detail: fmt.Sprintf("/metrics on %s failed validation: %v", addr, err)}
	}
	return Check{Name: name, OK: true, Detail: fmt.Sprintf("%d families, %d bytes in %v", len(fams), len(body), took)}
}

// checkDataDir verifies the directory exists (creating it if needed) and
// is writable.
func checkDataDir(dir string) Check {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Check{Name: "data-dir-writable", Detail: fmt.Sprintf("cannot create %s: %v", dir, err)}
	}
	probe := filepath.Join(dir, ".doctor-probe")
	if err := os.WriteFile(probe, []byte("probe"), 0o644); err != nil {
		return Check{Name: "data-dir-writable", Detail: fmt.Sprintf("cannot write in %s: %v", dir, err)}
	}
	os.Remove(probe)
	return Check{Name: "data-dir-writable", OK: true, Detail: dir}
}

// checkFsync verifies the filesystem under dir honors fsync — the
// operation every durability guarantee in the engine reduces to.
func checkFsync(dir string) Check {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Check{Name: "fsync", Detail: fmt.Sprintf("cannot create %s: %v", dir, err)}
	}
	probe := filepath.Join(dir, ".doctor-fsync")
	defer os.Remove(probe)
	f, err := os.Create(probe)
	if err != nil {
		return Check{Name: "fsync", Detail: fmt.Sprintf("cannot create probe file: %v", err)}
	}
	defer f.Close()
	if _, err := f.WriteString("probe"); err != nil {
		return Check{Name: "fsync", Detail: fmt.Sprintf("cannot write probe file: %v", err)}
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		return Check{Name: "fsync", Detail: fmt.Sprintf("fsync failed on %s: %v (durability would be a lie here)", dir, err)}
	}
	return Check{Name: "fsync", OK: true, Detail: fmt.Sprintf("fsync on %s took %v", dir, time.Since(start).Round(time.Microsecond))}
}

// checkFreeDisk verifies the data dir's filesystem has at least min
// bytes available. Starting a daemon on a nearly full disk just defers
// the ENOSPC to the first busy minute — the shard then degrades to
// read-only (by design), but preflight is the cheaper place to hear
// about it. The threshold is Config.MinFreeDisk (min_free_disk).
func checkFreeDisk(dir string, min int64) Check {
	const name = "free-disk"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Check{Name: name, Detail: fmt.Sprintf("cannot create %s: %v", dir, err)}
	}
	free, total, err := diskFree(dir)
	if err != nil {
		return Check{Name: name, Advisory: true, Detail: fmt.Sprintf("probe failed on %s: %v", dir, err)}
	}
	detail := fmt.Sprintf("%s free of %s on %s (floor %s)",
		fmtBytes(int64(free)), fmtBytes(int64(total)), dir, fmtBytes(min))
	if free < uint64(min) {
		return Check{Name: name, Detail: detail + " — journals will hit ENOSPC and degrade the shard to read-only; free space or lower min_free_disk"}
	}
	return Check{Name: name, OK: true, Detail: detail}
}

// fmtBytes renders a byte count with a binary suffix, one decimal.
func fmtBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// checkBind verifies the address can be bound right now (then releases
// it — a daemon started immediately after may still race another
// process, but the common misconfigurations are caught).
func checkBind(name, addr string) Check {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return Check{Name: name, Detail: fmt.Sprintf("cannot bind %s: %v", addr, err)}
	}
	bound := ln.Addr().String()
	ln.Close()
	return Check{Name: name, OK: true, Detail: "can bind " + bound}
}

// checkPeerReachable dials a configured peer. An unreachable peer is
// not fatal to a daemon (it degrades to a partitioned replica) but the
// doctor should say so before an operator wonders why nothing
// converges — hence Advisory: reported, but it does not fail the exit
// status, so preflighting the first daemon of a cluster passes.
func checkPeerReachable(idx int, addr string) Check {
	name := fmt.Sprintf("peer-%d", idx)
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return Check{Name: name, Advisory: true, Detail: fmt.Sprintf("%s unreachable: %v (the daemon still starts; it will gossip when the peer appears)", addr, err)}
	}
	conn.Close()
	return Check{Name: name, OK: true, Detail: addr + " accepts connections"}
}
