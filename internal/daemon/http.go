package daemon

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/client"
	"repro/internal/apology"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/uniq"
)

// maxBody bounds request bodies; a batch of a few thousand ops fits in
// well under this.
const maxBody = 8 << 20

// Retry-After hints for shed load. Overload clears as fast as the ring
// drains (milliseconds to a second); a degraded disk heals on the
// replica's re-probe cadence (capped at 2s), so its hint is longer.
const (
	retryAfterOverload = 1 * time.Second
	retryAfterDegraded = 2 * time.Second
)

func (d *Daemon) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", d.auth(d.handleSubmit))
	mux.HandleFunc("POST /v1/batch", d.auth(d.handleBatch))
	mux.HandleFunc("GET /v1/state", d.auth(d.handleState))
	mux.HandleFunc("GET /v1/apologies", d.auth(d.handleApologies))
	mux.HandleFunc("POST /v1/gossip", d.auth(d.handleGossip))
	mux.HandleFunc("GET /v1/trace", d.auth(d.handleTrace))
	mux.HandleFunc("POST /v1/annotate", d.auth(d.handleAnnotate))
	mux.HandleFunc("GET /healthz", d.handleHealth)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /dash", d.handleDash)
	return mux
}

// auth enforces the bearer token on /v1 endpoints. Comparison is
// constant-time; a missing or wrong token is a uniform 401.
func (d *Daemon) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if d.cfg.APIToken != "" {
			got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
			if subtle.ConstantTimeCompare([]byte(got), []byte(d.cfg.APIToken)) != 1 {
				writeError(w, http.StatusUnauthorized, "unauthorized", "missing or invalid bearer token")
				return
			}
		}
		next(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, client.ErrorEnvelope{Error: client.Error{Code: code, Message: msg}})
}

// writeRetryError is writeError plus a Retry-After hint — the shape of
// every load-shedding response (429 overloaded, 503 degraded), telling
// well-behaved clients when to come back instead of letting them hammer.
func writeRetryError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
	writeError(w, status, code, msg)
}

// shedding reports whether the ingest ring is saturated past the
// configured threshold. Refusing new work at the HTTP edge with a 429
// keeps the (bounded, backpressuring) ring from silently turning every
// caller into a blocked goroutine: fail the request fast and let the
// client's jittered backoff spread the load out.
func (d *Daemon) shedding() bool {
	depth, capacity := d.cluster.IngestBacklog(d.cfg.Node)
	return capacity > 0 && float64(depth) >= d.cfg.ShedBacklog*float64(capacity)
}

// degradedDecline reports whether every result is a retryable decline —
// the whole request bounced off degraded shards, which surfaces as a 503
// so clients honor Retry-After instead of treating it as business truth.
func degradedDecline(results []core.Result) bool {
	for _, res := range results {
		if res.Accepted || !res.Retryable {
			return false
		}
	}
	return len(results) > 0
}

// decodeBody parses a JSON body into v, rejecting unknown fields so a
// typo'd request fails loudly instead of silently taking defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
		return false
	}
	return true
}

// toOp lifts an API op into an engine op.
func toOp(op client.Op) core.Op {
	return core.Op{
		ID:   uniq.ID(op.ID),
		Kind: op.Kind,
		Key:  op.Key,
		Arg:  op.Arg,
		Note: op.Note,
	}
}

// toResult lowers an engine result into the API shape.
func toResult(res core.Result) client.Result {
	return client.Result{
		Accepted:  res.Accepted,
		Reason:    res.Reason,
		Retryable: res.Retryable,
		Sync:      res.Decision == policy.Sync,
		ID:        string(res.Op.ID),
		Lamport:   res.Op.Lam,
		LatencyNS: res.Latency.Nanoseconds(),
	}
}

func submitOptions(sync bool) []core.SubmitOption {
	if sync {
		return []core.SubmitOption{core.WithPolicy(policy.AlwaysSync())}
	}
	return nil
}

func validOp(w http.ResponseWriter, op client.Op) bool {
	if op.Kind == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "op kind is required")
		return false
	}
	return true
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req client.SubmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !validOp(w, req.Op) {
		return
	}
	if d.shedding() {
		writeRetryError(w, http.StatusTooManyRequests, "overloaded",
			"ingest ring saturated; back off and retry", retryAfterOverload)
		return
	}
	res, err := d.cluster.Submit(r.Context(), d.cfg.Node, toOp(req.Op), submitOptions(req.Sync)...)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
		return
	}
	if !res.Accepted && res.Retryable {
		writeRetryError(w, http.StatusServiceUnavailable, "degraded", res.Reason, retryAfterDegraded)
		return
	}
	writeJSON(w, http.StatusOK, toResult(res))
}

func (d *Daemon) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req client.BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "batch has no ops")
		return
	}
	ops := make([]core.Op, len(req.Ops))
	for i, op := range req.Ops {
		if !validOp(w, op) {
			return
		}
		ops[i] = toOp(op)
	}
	if d.shedding() {
		writeRetryError(w, http.StatusTooManyRequests, "overloaded",
			"ingest ring saturated; back off and retry", retryAfterOverload)
		return
	}
	results, err := d.cluster.SubmitBatch(r.Context(), d.cfg.Node, ops, submitOptions(req.Sync)...)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
		return
	}
	if degradedDecline(results) {
		// Every op bounced off a degraded shard: shed the whole batch as
		// a 503. A mixed batch still answers 200 — partial acceptance is
		// business outcome, not server failure, and each result carries
		// its own Retryable flag.
		writeRetryError(w, http.StatusServiceUnavailable, "degraded", results[0].Reason, retryAfterDegraded)
		return
	}
	out := client.BatchResponse{Results: make([]client.Result, len(results))}
	for i, res := range results {
		out.Results[i] = toResult(res)
	}
	writeJSON(w, http.StatusOK, out)
}

func (d *Daemon) handleState(w http.ResponseWriter, r *http.Request) {
	// Merge the hosted replica's per-shard states; each shard owns a
	// disjoint key range, so a plain union reconstructs the full map.
	keys := make(map[string]int64)
	for s := 0; s < d.cluster.Shards(); s++ {
		for k, v := range d.cluster.ShardReplica(s, d.cfg.Node).State() {
			keys[k] = v
		}
	}
	writeJSON(w, http.StatusOK, client.StateResponse{
		Node:   d.cfg.Node,
		Shards: d.cluster.Shards(),
		Keys:   keys,
	})
}

func toApologies(in []apology.Apology) []client.Apology {
	out := make([]client.Apology, len(in))
	for i, a := range in {
		out[i] = client.Apology{
			ID:      string(a.ID),
			Rule:    a.Rule,
			Detail:  a.Detail,
			Key:     a.Key,
			Amount:  a.Amount,
			Replica: a.Replica,
		}
	}
	return out
}

func (d *Daemon) handleApologies(w http.ResponseWriter, r *http.Request) {
	q := d.cluster.Apologies
	writeJSON(w, http.StatusOK, client.ApologiesResponse{
		Total:     q.Total(),
		Automated: toApologies(q.Automated()),
		Human:     toApologies(q.Human()),
	})
}

// handleGossip forces one anti-entropy round right now — an ops lever
// ("make these two catch up while I watch") and the hook that lets
// integration tests drive convergence deterministically instead of
// sleeping through timer intervals.
func (d *Daemon) handleGossip(w http.ResponseWriter, r *http.Request) {
	d.cluster.GossipRound()
	writeJSON(w, http.StatusOK, map[string]int{"rounds": 1})
}

func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	var degraded []string
	for _, s := range d.cluster.DegradedShards() {
		detail, _ := d.cluster.ShardDegraded(s)
		degraded = append(degraded, fmt.Sprintf("shard %d: %s", s, detail))
	}
	writeJSON(w, http.StatusOK, client.Health{
		OK:       len(degraded) == 0,
		Node:     d.cfg.Node,
		Shards:   d.cluster.Shards(),
		Replicas: d.cluster.Replicas(),
		PeerAddr: d.PeerAddr(),
		Degraded: degraded,
	})
}
