package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 15 {
		t.Fatalf("Sum = %v", h.Sum())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if h.P50() != 50 || h.P95() != 95 || h.P99() != 99 {
		t.Fatal("P50/P95/P99 helpers disagree with Quantile")
	}
}

func TestHistogramAddAfterQuantile(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Quantile(0.5) // forces sort
	h.Add(1)
	if h.Min() != 1 {
		t.Fatal("Add after Quantile lost re-sort")
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	h.Add(2)
	if h.Stddev() != 0 {
		t.Fatal("single sample stddev must be 0")
	}
	h.Add(4)
	h.Add(4)
	h.Add(4)
	h.Add(5)
	h.Add(5)
	h.Add(7)
	h.Add(9)
	// classic example: population stddev of 2,4,4,4,5,5,7,9 is 2
	if got := h.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

func TestHistogramDurations(t *testing.T) {
	var h Histogram
	h.AddDur(time.Millisecond)
	h.AddDur(3 * time.Millisecond)
	if h.MeanDur() != 2*time.Millisecond {
		t.Fatalf("MeanDur = %v", h.MeanDur())
	}
	if h.QuantileDur(1) != 3*time.Millisecond {
		t.Fatalf("QuantileDur(1) = %v", h.QuantileDur(1))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Inc()
	c.Addn(3)
	c.Addn(-1)
	if c.Value() != 4 {
		t.Fatalf("Value = %d, want 4", c.Value())
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("T", "note line", "col", "value")
	tab.AddRow("a", "1")
	tab.AddRow("longer", "22")
	s := tab.String()
	for _, want := range []string{"== T ==", "note line", "col", "longer", "22", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title + note + header + separator + 2 rows
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("T", "", "a")
	tab.AddRow("x", "extra", "cells")
	s := tab.String()
	if !strings.Contains(s, "extra") || !strings.Contains(s, "cells") {
		t.Fatalf("ragged row dropped cells:\n%s", s)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatalf("F = %q", F(1.23456, 2))
	}
	if Pct(0.1234) != "12.34%" {
		t.Fatalf("Pct = %q", Pct(0.1234))
	}
	if Dur(float64(2*time.Second)) != "2.00s" {
		t.Fatalf("Dur(2s) = %q", Dur(float64(2*time.Second)))
	}
	if Dur(float64(3*time.Millisecond)) != "3.00ms" {
		t.Fatalf("Dur(3ms) = %q", Dur(float64(3*time.Millisecond)))
	}
	if Dur(float64(4*time.Microsecond)) != "4.0µs" {
		t.Fatalf("Dur(4µs) = %q", Dur(float64(4*time.Microsecond)))
	}
	if Dur(500) != "500ns" {
		t.Fatalf("Dur(500ns) = %q", Dur(500))
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
	if Ratio(1, 2) != 0.5 {
		t.Fatal("Ratio(1,2) != 0.5")
	}
}
