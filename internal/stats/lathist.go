package stats

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// LatHist is a fixed-memory, lock-free latency histogram with
// logarithmically spaced buckets: 16 sub-buckets per power of two of
// nanoseconds, so every quantile is exact to within ~6% of its value.
// Histogram keeps raw samples — exact quantiles, but memory and lock
// contention grow with the sample count, which a long-lived daemon or a
// sustained driver pushing hundreds of thousands of ops per second
// cannot afford. A LatHist is ~1000 atomic counters, Record is two
// atomic adds, and a Snapshot diff turns cumulative counts into a
// per-window view. It is the single histogram type behind /metrics:
// Buckets/BucketBound expose the log-bucketed layout so the Prometheus
// renderer can emit full histogram series rather than p50/p99 summaries.
type LatHist struct {
	counts [HistBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64 // nanoseconds, for Prometheus _sum
}

const (
	histSubBits = 4 // 16 sub-buckets per octave

	// HistSub is the sub-bucket count per power of two — the histogram's
	// relative resolution (bucket width ≤ value/HistSub).
	HistSub = 1 << histSubBits

	// HistBuckets is the fixed bucket count: exact small values plus the
	// (octave, sub-bucket) log range covering every int64 nanosecond.
	HistBuckets = (63-histSubBits)*HistSub + HistSub
)

// BucketOf maps a nanosecond latency to its bucket index. Values up to
// 2^histSubBits map exactly; above that, the index is (octave,
// sub-bucket) — the classic HDR shape.
func BucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	v := uint64(ns)
	e := bits.Len64(v) - 1 // exponent of the leading bit
	if e <= histSubBits {
		return int(v) // 1..31 map to themselves (bucket width 1)
	}
	sub := (v >> (uint(e) - histSubBits)) & (HistSub - 1)
	idx := (e-histSubBits)*HistSub + int(sub) + HistSub
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	return idx
}

// BucketBound is the representative nanosecond value of a bucket: its
// lower bound, which keeps quantile estimates conservative (never above
// the true value by more than one bucket width). BucketBound(idx+1) is
// the bucket's exclusive upper bound.
func BucketBound(idx int) int64 {
	if idx < HistSub {
		return int64(idx)
	}
	idx -= HistSub
	e := idx/HistSub + histSubBits
	sub := idx % HistSub
	return (1 << uint(e)) + int64(sub)<<(uint(e)-histSubBits)
}

// Record adds one latency sample in nanoseconds.
func (h *LatHist) Record(ns int64) {
	h.counts[BucketOf(ns)].Add(1)
	h.total.Add(1)
	h.sum.Add(ns)
}

// AddDur records a duration sample. The name matches Histogram so the
// two types are drop-in replacements at recording sites.
func (h *LatHist) AddDur(d time.Duration) { h.Record(int64(d)) }

// Count reports how many samples were recorded.
func (h *LatHist) Count() int64 { return h.total.Load() }

// Sum reports the total of all recorded samples in nanoseconds.
func (h *LatHist) Sum() int64 { return h.sum.Load() }

// Snapshot copies the cumulative bucket counts. Diffing two snapshots
// (HistDiff) yields the samples recorded between them — the per-second
// reporting window.
func (h *LatHist) Snapshot() []int64 {
	out := make([]int64, HistBuckets)
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Merge adds every bucket of o into h.
func (h *LatHist) Merge(o *LatHist) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
}

// Quantile reports the q-quantile (0..1) in nanoseconds over all
// recorded samples, or 0 with none.
func (h *LatHist) Quantile(q float64) float64 {
	return QuantileOf(h.Snapshot(), q)
}

// QuantileDur is Quantile as a time.Duration.
func (h *LatHist) QuantileDur(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// P50 reports the median in nanoseconds.
func (h *LatHist) P50() float64 { return h.Quantile(0.50) }

// P99 reports the 99th percentile in nanoseconds.
func (h *LatHist) P99() float64 { return h.Quantile(0.99) }

// QuantileOf computes a quantile from a bucket-count vector.
func QuantileOf(counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			return float64(BucketBound(i))
		}
	}
	return float64(BucketBound(len(counts) - 1))
}

// HistDiff subtracts prev from cur element-wise — the window between two
// snapshots. The slices must be the same length.
func HistDiff(cur, prev []int64) []int64 {
	out := make([]int64, len(cur))
	for i := range cur {
		out[i] = cur[i] - prev[i]
	}
	return out
}

// HistCount sums a bucket-count vector.
func HistCount(counts []int64) int64 {
	var n int64
	for _, c := range counts {
		n += c
	}
	return n
}
