// Package stats provides the measurement and reporting primitives used by
// the experiment harness: counters, sample histograms with percentile
// queries, and plain-text tables.
//
// Every experiment in this repository reduces to a stats.Table; the bench
// harness and cmd/quicksand-bench only differ in which tables they print.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram collects float64 samples and answers summary queries. It keeps
// the raw samples (experiments here are small enough for that to be cheap)
// so percentiles are exact rather than bucketed approximations. Histograms
// are safe for concurrent use: simulated systems never contend, but the
// live goroutine transport records latencies from many submitters at once.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// AddDur records a duration sample in nanoseconds.
func (h *Histogram) AddDur(d time.Duration) { h.Add(float64(d)) }

// Count reports the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum reports the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sumLocked()
}

func (h *Histogram) sumLocked() float64 {
	s := 0.0
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Mean reports the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.meanLocked()
}

func (h *Histogram) meanLocked() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sumLocked() / float64(len(h.samples))
}

// Stddev reports the population standard deviation, or 0 with fewer than
// two samples.
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	m := h.meanLocked()
	ss := 0.0
	for _, v := range h.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[0]
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

// Quantile reports the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted samples, or 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sortLocked()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// P50 is Quantile(0.50).
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 is Quantile(0.95).
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// MeanDur interprets the mean as nanoseconds and returns it as a Duration.
func (h *Histogram) MeanDur() time.Duration { return time.Duration(h.Mean()) }

// Samples returns a copy of the raw samples, in insertion order if no
// quantile query has run yet (sorted otherwise).
func (h *Histogram) Samples() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.samples...)
}

// Merge folds all of o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	samples := o.Samples()
	h.mu.Lock()
	h.samples = append(h.samples, samples...)
	h.sorted = false
	h.mu.Unlock()
}

// QuantileDur interprets the q-quantile as nanoseconds.
func (h *Histogram) QuantileDur(q float64) time.Duration { return time.Duration(h.Quantile(q)) }

// Reservoir is a bounded-memory sample set: uniform reservoir sampling
// (algorithm R) over an unbounded stream, plus exact count and max.
// Long-lived recorders — a store's fsync latencies over days of uptime —
// use it where Histogram's keep-everything policy would leak. Quantiles
// are approximate (computed over the reservoir), Count and Max exact.
type Reservoir struct {
	mu      sync.Mutex
	size    int
	samples []float64
	n       int64 // total observations
	max     float64
	rnd     uint64 // xorshift state; deterministic, no clock involved
}

// NewReservoir returns a reservoir keeping at most size samples
// (minimum 16).
func NewReservoir(size int) *Reservoir {
	if size < 16 {
		size = 16
	}
	return &Reservoir{size: size, rnd: 0x9E3779B97F4A7C15}
}

// Add records one observation.
func (r *Reservoir) Add(v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	if v > r.max {
		r.max = v
	}
	if len(r.samples) < r.size {
		r.samples = append(r.samples, v)
		return
	}
	// xorshift64* — cheap, seedable, and clock-free.
	x := r.rnd
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rnd = x
	if idx := x % uint64(r.n); idx < uint64(r.size) {
		r.samples[idx] = v
	}
}

// AddDur records a duration observation in nanoseconds.
func (r *Reservoir) AddDur(d time.Duration) { r.Add(float64(d)) }

// Count reports the total number of observations (not the reservoir size).
func (r *Reservoir) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Max reports the largest observation ever seen.
func (r *Reservoir) Max() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// Quantile reports the q-quantile estimated from the retained samples.
func (r *Reservoir) Quantile(q float64) float64 {
	r.mu.Lock()
	samples := append([]float64(nil), r.samples...)
	r.mu.Unlock()
	n := len(samples)
	if n == 0 {
		return 0
	}
	sort.Float64s(samples)
	if q <= 0 {
		return samples[0]
	}
	if q >= 1 {
		return samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return samples[idx]
}

// QuantileDur interprets the q-quantile as nanoseconds.
func (r *Reservoir) QuantileDur(q float64) time.Duration { return time.Duration(r.Quantile(q)) }

// Samples returns a copy of the retained samples.
func (r *Reservoir) Samples() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]float64(nil), r.samples...)
}

// Spill folds the retained samples into a Histogram — the join point for
// aggregating many reservoirs into one distribution.
func (r *Reservoir) Spill(h *Histogram) {
	for _, v := range r.Samples() {
		h.Add(v)
	}
}

// Counter is a named monotonically increasing tally, safe for concurrent
// use.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { atomic.AddInt64(&c.n, 1) }

// Addn adds delta, which may be negative for callers using Counter as a
// plain accumulator.
func (c *Counter) Addn(delta int64) { atomic.AddInt64(&c.n, delta) }

// Value reports the current tally.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.n) }

// Table is a titled grid of cells rendered as aligned text. It is the
// common output format for every experiment: one Table per paper claim.
type Table struct {
	Title   string
	Note    string // one-line description of the claim being tested
	Headers []string
	Rows    [][]string
}

// NewTable constructs a table with the given title, note, and column headers.
func NewTable(title, note string, headers ...string) *Table {
	return &Table{Title: title, Note: note, Headers: headers}
}

// AddRow appends one row; cells beyond the header count are kept as-is and
// widen the table.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as monospace-aligned text.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	line := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// F formats a float with prec decimal places.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a ratio as a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// Dur formats a float nanosecond quantity as a rounded duration string.
func Dur(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// Ratio divides a by b, returning 0 when b is 0. Convenience for rate
// columns in experiment tables.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
