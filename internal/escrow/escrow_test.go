package escrow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReserveCommitMovesValue(t *testing.T) {
	a := NewAccount(100, 0, 1000)
	txn, ok := a.TryReserve(-30)
	if !ok {
		t.Fatal("reserve refused")
	}
	if a.Value() != 100 {
		t.Fatal("value moved before commit")
	}
	a.Commit(txn)
	if a.Value() != 70 {
		t.Fatalf("value = %d, want 70", a.Value())
	}
}

func TestAbortIsLogicalUndo(t *testing.T) {
	a := NewAccount(100, 0, 1000)
	txn, _ := a.TryReserve(-30)
	a.Abort(txn)
	if a.Value() != 100 {
		t.Fatalf("value = %d after abort, want 100", a.Value())
	}
	if a.Pending() != 0 {
		t.Fatal("pending not cleared by abort")
	}
}

func TestConcurrentCommutativeOpsInterleave(t *testing.T) {
	a := NewAccount(100, 0, 1000)
	t1, ok1 := a.TryReserve(-20)
	t2, ok2 := a.TryReserve(50)
	t3, ok3 := a.TryReserve(-20)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("commutative ops within bounds must all be admitted concurrently")
	}
	if a.Pending() != 3 {
		t.Fatalf("pending = %d", a.Pending())
	}
	// Commit in a different order than reserved.
	a.Commit(t3)
	a.Commit(t1)
	a.Commit(t2)
	if a.Value() != 110 {
		t.Fatalf("value = %d, want 110", a.Value())
	}
}

func TestWorstCaseGuardsLowerBound(t *testing.T) {
	a := NewAccount(100, 0, 1000)
	if _, ok := a.TryReserve(-60); !ok {
		t.Fatal("first -60 must fit")
	}
	// Another -60 MIGHT take the value to -20: must be refused even
	// though the committed value is still 100.
	if _, ok := a.TryReserve(-60); ok {
		t.Fatal("second -60 admitted; worst case violates min")
	}
	if a.Conflicts() != 1 {
		t.Fatalf("conflicts = %d", a.Conflicts())
	}
}

func TestWorstCaseGuardsUpperBound(t *testing.T) {
	a := NewAccount(900, 0, 1000)
	if _, ok := a.TryReserve(80); !ok {
		t.Fatal("+80 must fit")
	}
	if _, ok := a.TryReserve(80); ok {
		t.Fatal("second +80 admitted; worst case breaches max")
	}
}

func TestOppositeSignsDoNotFalselyConflict(t *testing.T) {
	// Pending +X must not make room for -Y: worst cases are evaluated
	// independently (the + may abort).
	a := NewAccount(50, 0, 1000)
	if _, ok := a.TryReserve(100); !ok {
		t.Fatal("+100 fits")
	}
	if _, ok := a.TryReserve(-60); ok {
		t.Fatal("-60 admitted only because a pending +100 might commit; must refuse")
	}
}

func TestQueuedReservationAdmittedAfterCommit(t *testing.T) {
	a := NewAccount(100, 0, 1000)
	t1, _ := a.TryReserve(-80)
	var got uint64
	a.Reserve(-80, func(txn uint64) { got = txn })
	if got != 0 {
		t.Fatal("blocked reservation granted immediately")
	}
	a.Commit(t1) // value 20... still cannot fit -80
	if got != 0 {
		t.Fatal("reservation granted though bounds still fail")
	}
	t3, _ := a.TryReserve(90)
	a.Commit(t3) // value 110: -80 fits now
	if got == 0 {
		t.Fatal("queued reservation never admitted")
	}
	a.Commit(got)
	if a.Value() != 30 {
		t.Fatalf("value = %d, want 30", a.Value())
	}
}

func TestQueueNoConvoy(t *testing.T) {
	a := NewAccount(100, 0, 1000)
	t1, _ := a.TryReserve(-90)
	blockedBig := false
	a.Reserve(-90, func(uint64) { blockedBig = true }) // worst case -180: must queue
	// A small op that fits (worst case 100-90-5 = 5 >= 0) is admitted
	// immediately — it does not convoy behind the queued big one.
	smallGranted := false
	a.Reserve(-5, func(txn uint64) { smallGranted = true; a.Commit(txn) })
	if !smallGranted {
		t.Fatal("small fitting reservation convoyed behind a queued big one")
	}
	if blockedBig {
		t.Fatal("big reservation admitted while bounds forbid it")
	}
	a.Abort(t1) // frees 90: the queued -90 now fits (95-90 = 5 >= 0)
	if !blockedBig {
		t.Fatal("queued reservation not admitted after abort freed capacity")
	}
}

func TestReadBlocksWithPendingWork(t *testing.T) {
	a := NewAccount(100, 0, 1000)
	if _, ok := a.Read(); !ok {
		t.Fatal("read with no pending work must succeed")
	}
	txn, _ := a.TryReserve(-10)
	if _, ok := a.Read(); ok {
		t.Fatal("READ does not commute; must refuse with pending work")
	}
	a.Commit(txn)
	if v, ok := a.Read(); !ok || v != 90 {
		t.Fatalf("read = %d,%v", v, ok)
	}
}

func TestBoundsAlwaysAvailable(t *testing.T) {
	a := NewAccount(100, 0, 1000)
	a.TryReserve(-10)
	a.TryReserve(25)
	low, high := a.Bounds()
	if low != 90 || high != 125 {
		t.Fatalf("bounds = [%d,%d], want [90,125]", low, high)
	}
}

func TestOperationLogRecordsHistory(t *testing.T) {
	a := NewAccount(100, 0, 1000)
	txn, _ := a.TryReserve(-10)
	a.Commit(txn)
	log := a.Log()
	if len(log) != 2 || log[0].What != "reserve" || log[1].What != "commit" || log[1].Delta != -10 {
		t.Fatalf("log = %+v", log)
	}
}

func TestUnknownTxnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Commit of unknown txn did not panic")
		}
	}()
	NewAccount(0, 0, 10).Commit(99)
}

func TestNewAccountOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds initial did not panic")
		}
	}()
	NewAccount(-1, 0, 10)
}

// TestPropInvariantNeverViolated drives random reserve/commit/abort
// traffic and checks the committed value never leaves [min,max] — the
// escrow guarantee.
func TestPropInvariantNeverViolated(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewAccount(50, 0, 100)
		var open []uint64
		for i := 0; i < 200; i++ {
			switch r.Intn(3) {
			case 0:
				delta := int64(r.Intn(61) - 30)
				if txn, ok := a.TryReserve(delta); ok {
					open = append(open, txn)
				}
			case 1:
				if len(open) > 0 {
					i := r.Intn(len(open))
					a.Commit(open[i])
					open = append(open[:i], open[i+1:]...)
				}
			case 2:
				if len(open) > 0 {
					i := r.Intn(len(open))
					a.Abort(open[i])
					open = append(open[:i], open[i+1:]...)
				}
			}
			if a.Value() < 0 || a.Value() > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropFinalValueOrderIndependent: the same multiset of committed
// deltas yields the same final value regardless of commit order —
// commutativity, the C of ACID 2.0.
func TestPropFinalValueOrderIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		deltas := make([]int64, 8)
		for i := range deltas {
			deltas[i] = int64(r.Intn(21) - 10)
		}
		run := func(order []int) (int64, bool) {
			a := NewAccount(500, 0, 1000)
			txns := make([]uint64, len(deltas))
			for i, d := range deltas {
				txn, ok := a.TryReserve(d)
				if !ok {
					return 0, false
				}
				txns[i] = txn
			}
			for _, i := range order {
				a.Commit(txns[i])
			}
			return a.Value(), true
		}
		fwd := make([]int, len(deltas))
		for i := range fwd {
			fwd[i] = i
		}
		v1, ok1 := run(fwd)
		v2, ok2 := run(r.Perm(len(deltas)))
		return ok1 == ok2 && (!ok1 || v1 == v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMutexSerializes(t *testing.T) {
	var m Mutex
	order := []int{}
	m.Acquire(func() { order = append(order, 1) })
	m.Acquire(func() { order = append(order, 2) }) // queues
	m.Acquire(func() { order = append(order, 3) }) // queues
	if len(order) != 1 {
		t.Fatalf("lock admitted %d holders", len(order))
	}
	m.Release()
	m.Release()
	m.Release()
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if m.Waits() != 2 {
		t.Fatalf("waits = %d", m.Waits())
	}
}

func TestMutexUncontendedImmediate(t *testing.T) {
	var m Mutex
	ran := false
	m.Acquire(func() { ran = true })
	if !ran {
		t.Fatal("uncontended acquire deferred")
	}
	m.Release()
	ran2 := false
	m.Acquire(func() { ran2 = true })
	if !ran2 {
		t.Fatal("lock not actually released")
	}
}
