// Package escrow implements the escrow transactional method of O'Neil
// (1986), described in the paper's §5.3 sidebar: commutative addition and
// subtraction on a hot value interleave freely as long as the worst-case
// outcome of all pending transactions stays inside the business
// constraint. Changes are operation-logged ("Transaction T1 subtracted
// $10") so an abort is a logical undo, not a before-image restore.
//
// "If any transaction dares to READ the value, that does not commute, is
// annoying, and stops other concurrent work" — Read here refuses while any
// operation is pending.
//
// An exclusive-lock Mutex is provided as the classic baseline the E7
// experiment compares against.
package escrow

import "fmt"

// OpRecord is one operation-log line.
type OpRecord struct {
	Txn   uint64
	Delta int64
	What  string // "reserve", "commit", "abort"
}

// Account is an escrow-locked quantity with a [Min, Max] constraint. The
// zero value is not usable; construct with NewAccount.
type Account struct {
	val      int64
	min, max int64

	pending   map[uint64]int64 // reserved deltas by transaction
	sumPlus   int64            // sum of positive pending deltas
	sumMinus  int64            // sum of negative pending deltas (<= 0)
	nextTxn   uint64
	log       []OpRecord
	waiters   []waiter // reservations blocked on bounds
	conflicts int      // reservations that had to wait or were refused
}

type waiter struct {
	delta int64
	done  func(txn uint64)
}

// NewAccount returns an account holding initial, constrained to
// [min, max]. It panics if initial is already out of bounds — a
// misconfigured experiment, not a runtime condition.
func NewAccount(initial, min, max int64) *Account {
	if initial < min || initial > max {
		panic(fmt.Sprintf("escrow: initial %d outside [%d,%d]", initial, min, max))
	}
	return &Account{val: initial, min: min, max: max, pending: make(map[uint64]int64)}
}

// Value returns the committed value. It ignores pending work and is safe
// for monitoring; transactional reads go through Read.
func (a *Account) Value() int64 { return a.val }

// Pending reports the number of in-flight transactions.
func (a *Account) Pending() int { return len(a.pending) }

// Conflicts reports how many reservations could not proceed immediately.
func (a *Account) Conflicts() int { return a.conflicts }

// Log returns the operation log.
func (a *Account) Log() []OpRecord { return append([]OpRecord(nil), a.log...) }

// fits reports whether one more delta keeps the worst case in bounds:
// every pending subtraction might commit (low water) and every pending
// addition might commit (high water).
func (a *Account) fits(delta int64) bool {
	low, high := a.sumMinus, a.sumPlus
	if delta < 0 {
		low += delta
	} else {
		high += delta
	}
	return a.val+low >= a.min && a.val+high <= a.max
}

// TryReserve attempts to reserve delta immediately. On success it returns
// the transaction ID; on failure (the worst case might break the bounds)
// it returns ok=false without queueing.
func (a *Account) TryReserve(delta int64) (txn uint64, ok bool) {
	if !a.fits(delta) {
		a.conflicts++
		return 0, false
	}
	a.nextTxn++
	txn = a.nextTxn
	a.pending[txn] = delta
	if delta < 0 {
		a.sumMinus += delta
	} else {
		a.sumPlus += delta
	}
	a.log = append(a.log, OpRecord{Txn: txn, Delta: delta, What: "reserve"})
	return txn, true
}

// Reserve reserves delta, queueing until the worst case allows it. done
// receives the transaction ID once the reservation holds.
func (a *Account) Reserve(delta int64, done func(txn uint64)) {
	if txn, ok := a.TryReserve(delta); ok {
		done(txn)
		return
	}
	a.waiters = append(a.waiters, waiter{delta: delta, done: done})
}

// Commit applies the reserved delta. Committing an unknown transaction
// panics: the operation log would be incoherent.
func (a *Account) Commit(txn uint64) {
	delta := a.mustTake(txn)
	a.val += delta
	a.log = append(a.log, OpRecord{Txn: txn, Delta: delta, What: "commit"})
	a.drain()
}

// Abort releases the reservation: the logical undo of operation logging —
// "the system would add $10 rather than restore the value" — which for an
// uncommitted escrow reservation means simply dropping the pending delta.
func (a *Account) Abort(txn uint64) {
	delta := a.mustTake(txn)
	a.log = append(a.log, OpRecord{Txn: txn, Delta: delta, What: "abort"})
	a.drain()
}

func (a *Account) mustTake(txn uint64) int64 {
	delta, ok := a.pending[txn]
	if !ok {
		panic(fmt.Sprintf("escrow: unknown txn %d", txn))
	}
	delete(a.pending, txn)
	if delta < 0 {
		a.sumMinus -= delta
	} else {
		a.sumPlus -= delta
	}
	return delta
}

// drain admits queued reservations that now fit, in arrival order. A
// blocked head does not block later waiters that fit (no convoy).
func (a *Account) drain() {
	remaining := a.waiters[:0]
	for _, w := range a.waiters {
		if txn, ok := a.TryReserve(w.delta); ok {
			w.done(txn)
		} else {
			remaining = append(remaining, w)
		}
	}
	a.waiters = remaining
}

// Read returns the exact value, but only when nothing is pending — a READ
// does not commute with in-flight escrow work. ok=false means the read
// would have blocked.
func (a *Account) Read() (int64, bool) {
	if len(a.pending) > 0 {
		a.conflicts++
		return 0, false
	}
	return a.val, true
}

// Bounds returns the guaranteed interval for the value given pending
// work: [committed + pending subtractions, committed + pending additions].
// Unlike Read, Bounds commutes with everything.
func (a *Account) Bounds() (low, high int64) {
	return a.val + a.sumMinus, a.val + a.sumPlus
}

// Mutex is the exclusive-lock baseline: one holder at a time, FIFO queue.
// The zero value is ready to use.
type Mutex struct {
	held  bool
	queue []func()
	waits int
}

// Acquire runs fn as soon as the lock is free (immediately if uncontended).
// fn must eventually lead to a Release call.
func (m *Mutex) Acquire(fn func()) {
	if m.held {
		m.waits++
		m.queue = append(m.queue, fn)
		return
	}
	m.held = true
	fn()
}

// Release frees the lock and admits the next waiter, if any.
func (m *Mutex) Release() {
	if len(m.queue) > 0 {
		next := m.queue[0]
		m.queue = m.queue[1:]
		next()
		return
	}
	m.held = false
}

// Waits reports how many acquisitions had to queue.
func (m *Mutex) Waits() int { return m.waits }
