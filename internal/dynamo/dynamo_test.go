package dynamo

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

func newCluster(seed int64, cfg Config) (*sim.Sim, *Cluster) {
	s := sim.New(seed)
	return s, New(s, cfg)
}

// put is a test helper that PUTs and runs the sim until resolution.
func put(t *testing.T, s *sim.Sim, c *Cluster, key, val string, ctx vclock.VC, actor string) {
	t.Helper()
	var ok, fired bool
	c.Put(key, val, ctx, actor, func(o bool) { fired, ok = true, o })
	s.Run()
	if !fired || !ok {
		t.Fatalf("Put(%q,%q) failed (fired=%v ok=%v)", key, val, fired, ok)
	}
}

// get is a test helper returning versions and context.
func get(t *testing.T, s *sim.Sim, c *Cluster, key string) ([]Version, vclock.VC) {
	t.Helper()
	var vs []Version
	var ctx vclock.VC
	var ok, fired bool
	c.Get(key, func(versions []Version, cx vclock.VC, o bool) {
		fired, ok, vs, ctx = true, o, versions, cx
	})
	s.Run()
	if !fired || !ok {
		t.Fatalf("Get(%q) failed", key)
	}
	return vs, ctx
}

func TestPutGetRoundTrip(t *testing.T) {
	s, c := newCluster(1, Config{})
	put(t, s, c, "cart:1", "milk", nil, "alice")
	vs, _ := get(t, s, c, "cart:1")
	if len(vs) != 1 || vs[0].Value != "milk" {
		t.Fatalf("get = %+v", vs)
	}
}

func TestGetAbsentKey(t *testing.T) {
	s, c := newCluster(1, Config{})
	vs, ctx := get(t, s, c, "nope")
	if len(vs) != 0 {
		t.Fatalf("absent key returned %+v", vs)
	}
	if len(ctx) != 0 {
		t.Fatalf("absent key ctx = %v", ctx)
	}
}

func TestCausalUpdateReplacesOldVersion(t *testing.T) {
	s, c := newCluster(1, Config{})
	put(t, s, c, "k", "v1", nil, "alice")
	_, ctx := get(t, s, c, "k")
	put(t, s, c, "k", "v2", ctx, "alice")
	vs, _ := get(t, s, c, "k")
	if len(vs) != 1 || vs[0].Value != "v2" {
		t.Fatalf("causal update produced %+v, want single v2", vs)
	}
}

func TestConcurrentBlindPutsMakeSiblings(t *testing.T) {
	s, c := newCluster(1, Config{})
	put(t, s, c, "k", "a", nil, "alice")
	put(t, s, c, "k", "b", nil, "bob") // no context: concurrent with "a"
	vs, _ := get(t, s, c, "k")
	if len(vs) != 2 {
		t.Fatalf("got %d versions, want 2 siblings: %+v", len(vs), vs)
	}
	if c.M.SiblingGets.Value() == 0 {
		t.Fatal("SiblingGets not counted")
	}
}

func TestSiblingResolutionViaContext(t *testing.T) {
	s, c := newCluster(1, Config{})
	put(t, s, c, "k", "a", nil, "alice")
	put(t, s, c, "k", "b", nil, "bob")
	_, ctx := get(t, s, c, "k") // ctx covers both siblings
	put(t, s, c, "k", "merged", ctx, "alice")
	vs, _ := get(t, s, c, "k")
	if len(vs) != 1 || vs[0].Value != "merged" {
		t.Fatalf("after reconciling put: %+v", vs)
	}
}

func TestWritesSurviveNodeFailuresSloppy(t *testing.T) {
	s, c := newCluster(2, Config{Nodes: 5, N: 3, R: 2, W: 2})
	// Kill two nodes: sloppy quorum must still accept writes.
	c.SetUp("n0", false)
	c.SetUp("n1", false)
	put(t, s, c, "k", "v", nil, "alice")
	vs, _ := get(t, s, c, "k")
	if len(vs) != 1 || vs[0].Value != "v" {
		t.Fatalf("sloppy write lost: %+v", vs)
	}
	if c.M.HintedWrites.Value() == 0 {
		t.Fatal("no hinted writes recorded despite down preferred nodes")
	}
}

func TestStrictQuorumFailsWhenReplicasDown(t *testing.T) {
	s, c := newCluster(2, Config{Nodes: 3, N: 3, R: 2, W: 3, StrictQuorum: true})
	c.SetUp("n2", false)
	var ok, fired bool
	c.Put("k", "v", nil, "alice", func(o bool) { fired, ok = true, o })
	s.Run()
	if !fired {
		t.Fatal("put never resolved")
	}
	if ok {
		t.Fatal("strict W=3 write succeeded with a replica down")
	}
	if c.M.PutFails.Value() != 1 {
		t.Fatalf("PutFails = %d", c.M.PutFails.Value())
	}
}

func TestHintedHandoffDeliversAfterRecovery(t *testing.T) {
	s, c := newCluster(3, Config{Nodes: 4, N: 3, R: 1, W: 2, HintRetry: 5 * time.Millisecond})
	// Find the proper homes of the key, crash one of them, write, revive.
	var homes []simnet.NodeID
	c.ring.walk("k", func(id simnet.NodeID) bool {
		homes = append(homes, id)
		return len(homes) < 3
	})
	victim := homes[0]
	c.SetUp(victim, false)
	put(t, s, c, "k", "v", nil, "alice")
	if c.M.HintedWrites.Value() == 0 {
		t.Fatal("expected a hinted write")
	}
	c.SetUp(victim, true)
	s.RunFor(100 * time.Millisecond)
	s.Run()
	if c.M.HintsFlushed.Value() == 0 {
		t.Fatal("hints never flushed after home recovered")
	}
	vs := c.ReplicaVersions(victim, "k")
	if len(vs) != 1 || vs[0].Value != "v" {
		t.Fatalf("recovered home missing hinted write: %+v", vs)
	}
}

func TestReadRepairHealsStaleReplica(t *testing.T) {
	s, c := newCluster(4, Config{Nodes: 5, N: 3, R: 3, W: 2})
	put(t, s, c, "k", "v1", nil, "alice")
	// Manually blank one replica to fake staleness.
	var homes []simnet.NodeID
	c.ring.walk("k", func(id simnet.NodeID) bool {
		homes = append(homes, id)
		return len(homes) < 3
	})
	stale := homes[2]
	delete(c.node[stale].store, "k")
	// An R=3 read must notice and repair it.
	get(t, s, c, "k")
	s.Run()
	if c.M.ReadRepairs.Value() == 0 {
		t.Fatal("read repair not triggered")
	}
	vs := c.ReplicaVersions(stale, "k")
	if len(vs) != 1 || vs[0].Value != "v1" {
		t.Fatalf("stale replica not repaired: %+v", vs)
	}
}

func TestAntiEntropyConvergesPartitionedWrites(t *testing.T) {
	s, c := newCluster(5, Config{Nodes: 4, N: 3, R: 1, W: 1})
	// Split the cluster, write different keys on each side.
	c.Net().Partition([]simnet.NodeID{"n0", "n1"}, []simnet.NodeID{"n2", "n3"})
	var okA, okB bool
	c.Put("keyA", "a", nil, "alice", func(o bool) { okA = o })
	c.Put("keyB", "b", nil, "bob", func(o bool) { okB = o })
	s.Run()
	if !okA || !okB {
		t.Fatalf("partitioned writes failed: %v %v (W=1 should accept)", okA, okB)
	}
	c.Net().Heal()
	for i := 0; i < 4; i++ {
		c.AntiEntropyRound()
		s.Run()
	}
	// Every node must now know both keys.
	for _, id := range c.Nodes() {
		for _, key := range []string{"keyA", "keyB"} {
			if len(c.ReplicaVersions(id, key)) == 0 {
				t.Fatalf("node %s missing %s after anti-entropy", id, key)
			}
		}
	}
	if c.M.AntiEntropy.Value() == 0 {
		t.Fatal("anti-entropy not counted")
	}
}

func TestAvailabilityChoiceAlwaysAcceptsPut(t *testing.T) {
	// §6.1: "Dynamo always accepts a PUT to the store even if this may
	// result in an inconsistent GET later." With W=1 and any single node
	// alive, puts keep succeeding.
	s, c := newCluster(6, Config{Nodes: 5, N: 3, R: 1, W: 1})
	for _, id := range []simnet.NodeID{"n0", "n1", "n2", "n3"} {
		c.SetUp(id, false)
	}
	put(t, s, c, "k", "v", nil, "alice")
	if c.M.PutFails.Value() != 0 {
		t.Fatal("put failed with one node alive and W=1")
	}
	_ = s
}

func TestAllNodesDownFails(t *testing.T) {
	s, c := newCluster(7, Config{Nodes: 3})
	for _, id := range c.Nodes() {
		c.SetUp(id, false)
	}
	var fired, ok bool
	c.Put("k", "v", nil, "alice", func(o bool) { fired, ok = true, o })
	s.Run()
	if !fired || ok {
		t.Fatalf("put with all nodes down: fired=%v ok=%v", fired, ok)
	}
	c.Get("k", func(_ []Version, _ vclock.VC, o bool) {
		if o {
			t.Error("get succeeded with all nodes down")
		}
	})
	s.Run()
}

func TestMergeVersionsPrunesDominated(t *testing.T) {
	a := vclock.New().Tick("x")
	b := a.Copy().Tick("x")
	got := mergeVersions([]Version{{Clock: a, Value: "old"}}, []Version{{Clock: b, Value: "new"}})
	if len(got) != 1 || got[0].Value != "new" {
		t.Fatalf("mergeVersions = %+v", got)
	}
}

func TestMergeVersionsKeepsConcurrent(t *testing.T) {
	a := vclock.New().Tick("x")
	b := vclock.New().Tick("y")
	got := mergeVersions([]Version{{Clock: a, Value: "1"}}, []Version{{Clock: b, Value: "2"}})
	if len(got) != 2 {
		t.Fatalf("concurrent versions pruned: %+v", got)
	}
}

func TestMergeVersionsDedupesEqual(t *testing.T) {
	a := vclock.New().Tick("x")
	got := mergeVersions([]Version{{Clock: a, Value: "v"}}, []Version{{Clock: a.Copy(), Value: "v"}})
	if len(got) != 1 {
		t.Fatalf("equal versions not deduped: %+v", got)
	}
}

func TestRingSpreadsKeysAndIsStable(t *testing.T) {
	r := newRing([]simnet.NodeID{"a", "b", "c", "d"}, 16)
	counts := map[simnet.NodeID]int{}
	for i := 0; i < 400; i++ {
		r.walk("key"+itoa(i), func(id simnet.NodeID) bool {
			counts[id]++
			return false
		})
	}
	for id, n := range counts {
		if n == 0 {
			t.Fatalf("node %s got no keys", id)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d nodes own keys", len(counts))
	}
	// Same key must always map to the same preference list.
	p1 := r.preferenceList("stable", 3, false, nil)
	p2 := r.preferenceList("stable", 3, false, nil)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("preference list unstable")
		}
	}
}

func TestPreferenceListSloppySubstitution(t *testing.T) {
	r := newRing([]simnet.NodeID{"a", "b", "c", "d"}, 8)
	strict := r.preferenceList("k", 3, false, nil)
	down := strict[0].Node
	sloppy := r.preferenceList("k", 3, true, func(id simnet.NodeID) bool { return id != down })
	if len(sloppy) != 3 {
		t.Fatalf("sloppy list = %+v", sloppy)
	}
	hinted := 0
	for _, tg := range sloppy {
		if tg.Node == down {
			t.Fatal("down node appears in sloppy list")
		}
		if tg.HintFor == down {
			hinted++
		}
	}
	if hinted != 1 {
		t.Fatalf("expected exactly one substitute hinted for %s, got %d", down, hinted)
	}
}

func TestNextClockNeverRegresses(t *testing.T) {
	// The documented client protocol: merging the predicted clock into
	// the next context keeps the actor's entry strictly increasing even
	// when reads return stale contexts.
	var last vclock.VC
	staleCtx := vclock.New() // reads keep returning the empty context
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		use := staleCtx.Merge(last)
		clock := NextClock(use, "writer")
		last = clock
		key := clock.String()
		if seen[key] {
			t.Fatalf("clock %s repeated at step %d", key, i)
		}
		seen[key] = true
	}
	if last.Get("writer") != 5 {
		t.Fatalf("writer entry = %d, want 5", last.Get("writer"))
	}
}

func TestNextClockNilContext(t *testing.T) {
	c := NextClock(nil, "a")
	if c.Get("a") != 1 {
		t.Fatalf("NextClock(nil) = %v", c)
	}
}

func TestMerkleSyncConvergesLikeFullSync(t *testing.T) {
	for _, useMerkle := range []bool{false, true} {
		s, c := newCluster(9, Config{Nodes: 4, N: 3, R: 1, W: 1, MerkleSync: useMerkle})
		c.Net().Partition([]simnet.NodeID{"n0", "n1"}, []simnet.NodeID{"n2", "n3"})
		var okA, okB bool
		c.Put("keyA", "a", nil, "alice", func(o bool) { okA = o })
		c.Put("keyB", "b", nil, "bob", func(o bool) { okB = o })
		s.Run()
		if !okA || !okB {
			t.Fatalf("partitioned writes failed (merkle=%v)", useMerkle)
		}
		c.Net().Heal()
		for i := 0; i < 6 && !c.InSync(); i++ {
			c.AntiEntropyRound()
			s.Run()
		}
		if !c.InSync() {
			t.Fatalf("anti-entropy (merkle=%v) never converged", useMerkle)
		}
	}
}

func TestMerkleSyncRepairsForgottenKey(t *testing.T) {
	s, c := newCluster(10, Config{Nodes: 3, N: 3, R: 2, W: 3, MerkleSync: true})
	put(t, s, c, "k", "v", nil, "alice")
	c.ForgetKey("n0", "k")
	for i := 0; i < 4 && !c.InSync(); i++ {
		c.AntiEntropyRound()
		s.Run()
	}
	if !c.InSync() {
		t.Fatal("merkle sync did not repair the forgotten key")
	}
	vs := c.ReplicaVersions("n0", "k")
	if len(vs) != 1 || vs[0].Value != "v" {
		t.Fatalf("n0 versions = %+v", vs)
	}
	if c.M.SyncVersions.Value() == 0 || c.M.SyncDigests.Value() == 0 {
		t.Fatal("sync counters not recorded")
	}
}

func TestInSyncDetectsDivergence(t *testing.T) {
	s, c := newCluster(11, Config{Nodes: 3, N: 3, R: 2, W: 3})
	put(t, s, c, "k", "v", nil, "alice")
	if !c.InSync() {
		t.Fatal("fully replicated write reports out of sync")
	}
	c.ForgetKey("n1", "k")
	if c.InSync() {
		t.Fatal("forgotten key not detected")
	}
}
