package dynamo

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vclock"
)

// TestPropNoAckedWriteLostUnderChurn: whatever the crash schedule, every
// acknowledged write to a distinct key is readable after the cluster
// heals and anti-entropy runs — the paper's availability-over-consistency
// store still never loses what it acknowledged (W copies survive, and at
// least one lives through single-node churn).
func TestPropNoAckedWriteLostUnderChurn(t *testing.T) {
	f := func(seed int64) bool {
		for _, merkleMode := range []bool{false, true} {
			s, c := newCluster(seed, Config{Nodes: 5, N: 3, R: 2, W: 2, MerkleSync: merkleMode})
			r := s.Rand()
			acked := map[string]string{}

			// One node at a time bounces; W=2 always has a survivor.
			nodes := c.Nodes()
			for round := 0; round < 8; round++ {
				victim := nodes[r.Intn(len(nodes))]
				at := time.Duration(round*20+r.Intn(10)) * time.Millisecond
				s.After(at, func() { c.SetUp(victim, false) })
				s.After(at+15*time.Millisecond, func() { c.SetUp(victim, true) })
			}
			for i := 0; i < 60; i++ {
				i := i
				s.After(time.Duration(i*3)*time.Millisecond, func() {
					key, val := fmt.Sprintf("key-%04d", i), fmt.Sprintf("v%d", i)
					c.Put(key, val, vclock.New(), fmt.Sprintf("actor-%d", i), func(ok bool) {
						if ok {
							acked[key] = val
						}
					})
				})
			}
			s.Run()
			for _, id := range nodes {
				c.SetUp(id, true)
			}
			s.Run()
			for i := 0; i < 5; i++ {
				c.AntiEntropyRound()
				s.Run()
			}

			lost := 0
			for key, want := range acked {
				k, w := key, want
				c.Get(k, func(versions []Version, _ vclock.VC, ok bool) {
					found := false
					for _, v := range versions {
						if v.Value == w {
							found = true
						}
					}
					if !ok || !found {
						lost++
					}
				})
				s.Run()
			}
			if lost != 0 {
				t.Logf("seed=%d merkle=%v lost=%d of %d acked", seed, merkleMode, lost, len(acked))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
