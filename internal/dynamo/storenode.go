package dynamo

import (
	"repro/internal/rpc"
	"repro/internal/simnet"
	"repro/internal/vclock"
)

// Wire messages.
type (
	sgetReq  struct{ Key string }
	sgetResp struct {
		From     simnet.NodeID
		Versions []Version
	}
	sputReq struct {
		Key     string
		Version Version
		HintFor simnet.NodeID // non-empty on a sloppy write for a down home
	}
	srepairReq struct {
		Key      string
		Versions []Version
	}
	syncReq  struct{ Store map[string][]Version }
	syncResp struct{ Store map[string][]Version }
	ack      struct{ OK bool }
)

// storeNode is one Dynamo storage host. Its store survives crashes (the
// real node's disk does); a crashed node simply stops answering until
// revived.
type storeNode struct {
	c         *Cluster
	id        simnet.NodeID
	ep        *rpc.Endpoint
	store     map[string][]Version
	hints     map[simnet.NodeID]map[string][]Version
	armed     bool // hint-retry timer pending
	hintTries int  // consecutive unproductive retries
}

func newStoreNode(c *Cluster, id simnet.NodeID) *storeNode {
	n := &storeNode{
		c: c, id: id,
		store: make(map[string][]Version),
		hints: make(map[simnet.NodeID]map[string][]Version),
	}
	n.ep = rpc.NewEndpoint(c.net, id, c.cfg.CallTimeout)
	n.ep.Handle("sget", n.handleGet)
	n.ep.Handle("sput", n.handlePut)
	n.ep.Handle("srepair", n.handleRepair)
	n.ep.Handle("sync", n.handleSync)
	n.ep.Handle("mtree", n.handleMTree)
	n.ep.Handle("mpush", n.handleMPush)
	return n
}

// apply merges v into the key's sibling set, keeping only causally
// maximal versions.
func (n *storeNode) apply(key string, vs ...Version) {
	n.store[key] = mergeVersions(n.store[key], vs)
}

// mergeVersions returns the maximal (undominated) versions of old ∪ new,
// with exact duplicates collapsed.
func mergeVersions(old, add []Version) []Version {
	all := append(append([]Version(nil), old...), add...)
	var out []Version
	for i, v := range all {
		dominated := false
		for j, w := range all {
			if i == j {
				continue
			}
			switch v.Clock.Compare(w.Clock) {
			case vclock.Before:
				dominated = true
			case vclock.Equal:
				// Keep only the first of identical versions.
				if j < i {
					dominated = true
				}
			}
			if dominated {
				break
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	return out
}

// sameVersions reports whether two sibling sets are causally identical.
func sameVersions(a, b []Version) bool {
	if len(a) != len(b) {
		return false
	}
	for _, v := range a {
		found := false
		for _, w := range b {
			if v.Clock.Compare(w.Clock) == vclock.Equal && v.Value == w.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (n *storeNode) handleGet(from simnet.NodeID, req any, reply func(any)) {
	r := req.(sgetReq)
	reply(sgetResp{From: n.id, Versions: copyVersions(n.store[r.Key])})
}

func (n *storeNode) handlePut(from simnet.NodeID, req any, reply func(any)) {
	r := req.(sputReq)
	n.apply(r.Key, r.Version)
	if r.HintFor != "" {
		// This write's proper home is down; remember to forward it.
		byKey := n.hints[r.HintFor]
		if byKey == nil {
			byKey = make(map[string][]Version)
			n.hints[r.HintFor] = byKey
		}
		byKey[r.Key] = mergeVersions(byKey[r.Key], []Version{r.Version})
		n.armHintFlush()
	}
	reply(ack{OK: true})
}

func (n *storeNode) handleRepair(from simnet.NodeID, req any, reply func(any)) {
	r := req.(srepairReq)
	n.apply(r.Key, r.Versions...)
	reply(ack{OK: true})
}

func (n *storeNode) handleSync(from simnet.NodeID, req any, reply func(any)) {
	r := req.(syncReq)
	for key, vs := range r.Store {
		n.c.M.SyncVersions.Addn(int64(len(vs)))
		n.apply(key, vs...)
	}
	snap := n.snapshot()
	for _, vs := range snap {
		n.c.M.SyncVersions.Addn(int64(len(vs)))
	}
	reply(syncResp{Store: snap})
}

// snapshot deep-copies the store for the wire (the simulator shares one
// address space; replicas must not alias each other's clocks).
func (n *storeNode) snapshot() map[string][]Version {
	out := make(map[string][]Version, len(n.store))
	for k, vs := range n.store {
		out[k] = copyVersions(vs)
	}
	return out
}

func copyVersions(vs []Version) []Version {
	out := make([]Version, len(vs))
	for i, v := range vs {
		out[i] = Version{Clock: v.Clock.Copy(), Value: v.Value}
	}
	return out
}

// coordinateGet runs the R-quorum read with read repair.
func (n *storeNode) coordinateGet(key string, done func([]Version, bool)) {
	prefs := n.c.ring.preferenceList(key, n.c.cfg.N, !n.c.cfg.StrictQuorum, n.c.net.IsUp)
	var replies []sgetResp
	quorumCall(n.ep, prefs, "sget",
		func(target) any { return sgetReq{Key: key} },
		n.c.cfg.R,
		func(resps []any, ok bool) {
			if !ok {
				done(nil, false)
				return
			}
			var merged []Version
			for _, r := range resps {
				sr := r.(sgetResp)
				replies = append(replies, sr)
				merged = mergeVersions(merged, sr.Versions)
			}
			// Read repair: push the merged truth back to any replica
			// that answered with less.
			for _, sr := range replies {
				if !sameVersions(sr.Versions, merged) {
					n.c.M.ReadRepairs.Inc()
					n.ep.Call(sr.From, "srepair", srepairReq{Key: key, Versions: copyVersions(merged)}, nil)
				}
			}
			done(copyVersions(merged), true)
		},
		func(t target, resp any) {
			// Straggler replies still get repaired via anti-entropy.
		})
}

// coordinatePut runs the W-quorum write, hinting sloppy substitutes.
func (n *storeNode) coordinatePut(key string, v Version, done func(bool)) {
	prefs := n.c.ring.preferenceList(key, n.c.cfg.N, !n.c.cfg.StrictQuorum, n.c.net.IsUp)
	for _, p := range prefs {
		if p.HintFor != "" {
			n.c.M.HintedWrites.Inc()
		}
	}
	quorumCall(n.ep, prefs, "sput",
		func(t target) any { return sputReq{Key: key, Version: v, HintFor: t.HintFor} },
		n.c.cfg.W,
		func(_ []any, ok bool) { done(ok) },
		nil)
}

// armHintFlush schedules hint delivery attempts while hints exist. After
// HintMaxTries unproductive polls the timer gives up and leaves the hints
// for anti-entropy, bounding the event load of a permanently dead home.
func (n *storeNode) armHintFlush() {
	if n.armed {
		return
	}
	n.armed = true
	n.hintTries = 0
	n.c.s.After(n.c.cfg.HintRetry, n.hintTick)
}

func (n *storeNode) hintTick() {
	n.armed = false
	before := len(n.hints)
	n.flushHints()
	if len(n.hints) == 0 {
		n.hintTries = 0
		return
	}
	if len(n.hints) < before {
		n.hintTries = 0 // progress; keep going
	} else {
		n.hintTries++
	}
	if n.hintTries < n.c.cfg.HintMaxTries {
		n.armed = true
		n.c.s.After(n.c.cfg.HintRetry, n.hintTick)
	}
}

// flushHints forwards stored hints to homes that are back up. Delivery is
// optimistic: the hint is dropped at send time, trusting the (loss-free by
// default) network; anti-entropy mops up anything that still slips.
func (n *storeNode) flushHints() {
	if n.ep.Crashed() {
		return
	}
	for home, byKey := range n.hints {
		if !n.c.net.IsUp(home) || !n.c.net.Reachable(n.id, home) {
			continue
		}
		for key, vs := range byKey {
			n.ep.Call(home, "srepair", srepairReq{Key: key, Versions: copyVersions(vs)}, nil)
			n.c.M.HintsFlushed.Inc()
		}
		delete(n.hints, home)
	}
}

// syncWith performs one pairwise anti-entropy exchange, whole-store or
// Merkle depending on configuration.
func (n *storeNode) syncWith(peer simnet.NodeID) {
	n.c.M.AntiEntropy.Inc()
	if n.c.cfg.MerkleSync {
		n.syncWithMerkle(peer)
		return
	}
	n.ep.Call(peer, "sync", syncReq{Store: n.snapshot()}, func(resp any, ok bool) {
		if !ok {
			return
		}
		for key, vs := range resp.(syncResp).Store {
			n.apply(key, vs...)
		}
	})
}
