package dynamo

import (
	"sort"
	"strings"

	"repro/internal/merkle"
	"repro/internal/simnet"
)

// Merkle anti-entropy wire messages.
type (
	mtreeReq  struct{ Tree *merkle.Tree }
	mtreeResp struct {
		Diff     []int // divergent leaf indexes, per the responder's walk
		Compared int   // digests the responder examined
		Store    map[string][]Version
	}
	mpushReq struct{ Store map[string][]Version }
)

// versionDigest serializes a key's sibling set deterministically; two
// replicas with causally identical sets produce identical digests.
func versionDigest(vs []Version) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.Clock.String() + "=" + v.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// merkleTree summarizes the node's whole store.
func (n *storeNode) merkleTree() *merkle.Tree {
	items := make(map[string]string, len(n.store))
	for k, vs := range n.store {
		items[k] = versionDigest(vs)
	}
	return merkle.Build(n.c.cfg.MerkleDepth, items)
}

// leafStore returns a deep copy of this node's versions for every key
// living in one of the given leaves.
func (n *storeNode) leafStore(leaves []int) map[string][]Version {
	want := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		want[l] = true
	}
	out := map[string][]Version{}
	for k, vs := range n.store {
		if want[merkle.LeafIndex(n.c.cfg.MerkleDepth, k)] {
			out[k] = copyVersions(vs)
		}
	}
	return out
}

// syncWithMerkle performs one Merkle anti-entropy exchange: ship the
// tree, learn which leaves diverge, swap only those leaves' versions.
func (n *storeNode) syncWithMerkle(peer simnet.NodeID) {
	tree := n.merkleTree()
	n.ep.Call(peer, "mtree", mtreeReq{Tree: tree}, func(resp any, ok bool) {
		if !ok {
			return
		}
		r := resp.(mtreeResp)
		n.c.M.SyncDigests.Addn(int64(r.Compared))
		for key, vs := range r.Store {
			n.c.M.SyncVersions.Addn(int64(len(vs)))
			n.apply(key, vs...)
		}
		if len(r.Diff) == 0 {
			return
		}
		// Reverse direction: hand the peer this node's copy of the
		// divergent leaves.
		mine := n.leafStore(r.Diff)
		for _, vs := range mine {
			n.c.M.SyncVersions.Addn(int64(len(vs)))
		}
		n.ep.Call(peer, "mpush", mpushReq{Store: mine}, nil)
	})
}

func (n *storeNode) handleMTree(from simnet.NodeID, req any, reply func(any)) {
	r := req.(mtreeReq)
	mine := n.merkleTree()
	diff, compared := merkle.DiffLeaves(mine, r.Tree)
	reply(mtreeResp{Diff: diff, Compared: compared, Store: n.leafStore(diff)})
}

func (n *storeNode) handleMPush(from simnet.NodeID, req any, reply func(any)) {
	r := req.(mpushReq)
	for key, vs := range r.Store {
		n.apply(key, vs...)
	}
	reply(ack{OK: true})
}
