package dynamo

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/simnet"
)

// ring is a consistent-hash ring with virtual nodes, the partitioning
// scheme of the Dynamo paper's §4.2 (and of §2.3 of Helland & Campbell:
// data carved into uniquely keyed chunks that live on one node at a time).
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node simnet.NodeID
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a of short, similar strings (node vnode labels) barely
	// avalanches, leaving each node's points clustered on one arc.
	// Finish with murmur3's fmix64 to spread them.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func newRing(nodes []simnet.NodeID, vnodes int) *ring {
	r := &ring{}
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// walk visits distinct physical nodes clockwise from key's hash position
// until fn returns false.
func (r *ring) walk(key string, fn func(simnet.NodeID) bool) {
	if len(r.points) == 0 {
		return
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[simnet.NodeID]bool)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if !fn(p.node) {
			return
		}
	}
}

// preferenceList returns the first n distinct nodes for key. When sloppy
// is true, nodes reported down by isUp are skipped and substituted by the
// next nodes on the ring (each substitute paired with the down node it
// stands in for — the hinted-handoff "intended recipient"). When sloppy is
// false the list is the strict top-N, dead or alive.
func (r *ring) preferenceList(key string, n int, sloppy bool, isUp func(simnet.NodeID) bool) []target {
	var prefs []target
	var substitutesFor []simnet.NodeID
	r.walk(key, func(node simnet.NodeID) bool {
		if !sloppy {
			prefs = append(prefs, target{Node: node})
			return len(prefs) < n
		}
		if isUp(node) {
			t := target{Node: node}
			if len(substitutesFor) > 0 {
				t.HintFor = substitutesFor[0]
				substitutesFor = substitutesFor[1:]
			}
			prefs = append(prefs, t)
			return len(prefs) < n
		}
		// Down: remember that a later node must carry its hint.
		substitutesFor = append(substitutesFor, node)
		return true
	})
	return prefs
}

// target is one destination for a read or write: the node to contact and,
// for sloppy writes, the down node it is substituting for.
type target struct {
	Node    simnet.NodeID
	HintFor simnet.NodeID // zero when writing to the proper home
}
