package dynamo

import (
	"repro/internal/shard"
	"repro/internal/simnet"
)

// ring adapts the shared consistent-hash ring (internal/shard, lifted
// from this package so the replication engine can route keys to shards
// with the same structure) to Dynamo's preference-list semantics: data
// carved into uniquely keyed chunks that live on one node at a time
// (Helland & Campbell §2.3, Dynamo §4.2).
type ring struct {
	r *shard.Ring[simnet.NodeID]
}

func newRing(nodes []simnet.NodeID, vnodes int) *ring {
	return &ring{r: shard.NewRing(nodes, vnodes)}
}

// walk visits distinct physical nodes clockwise from key's hash position
// until fn returns false.
func (r *ring) walk(key string, fn func(simnet.NodeID) bool) { r.r.Walk(key, fn) }

// preferenceList returns the first n distinct nodes for key. When sloppy
// is true, nodes reported down by isUp are skipped and substituted by the
// next nodes on the ring (each substitute paired with the down node it
// stands in for — the hinted-handoff "intended recipient"). When sloppy is
// false the list is the strict top-N, dead or alive.
func (r *ring) preferenceList(key string, n int, sloppy bool, isUp func(simnet.NodeID) bool) []target {
	var prefs []target
	var substitutesFor []simnet.NodeID
	r.walk(key, func(node simnet.NodeID) bool {
		if !sloppy {
			prefs = append(prefs, target{Node: node})
			return len(prefs) < n
		}
		if isUp(node) {
			t := target{Node: node}
			if len(substitutesFor) > 0 {
				t.HintFor = substitutesFor[0]
				substitutesFor = substitutesFor[1:]
			}
			prefs = append(prefs, t)
			return len(prefs) < n
		}
		// Down: remember that a later node must carry its hint.
		substitutesFor = append(substitutesFor, node)
		return true
	})
	return prefs
}

// target is one destination for a read or write: the node to contact and,
// for sloppy writes, the down node it is substituting for.
type target struct {
	Node    simnet.NodeID
	HintFor simnet.NodeID // zero when writing to the proper home
}
