// Package dynamo implements a replicated blob store in the style of
// Amazon's Dynamo, the substrate of the paper's Example 4 (§6.1): "a
// replicated blob store implemented with a DHT ... Dynamo always accepts a
// PUT to the store even if this may result in an inconsistent GET later."
//
// The pieces match the Dynamo design the paper leans on: a consistent-hash
// ring with virtual nodes, N/R/W quorums, sloppy quorums with hinted
// handoff (availability over consistency), vector-clock versioning with
// concurrent siblings surfaced to the application, read repair, and
// pairwise anti-entropy. The store itself knows nothing about cart
// semantics — §6.4's point is precisely that "storage systems alone cannot
// provide the commutativity we need"; reconciliation belongs to the
// application layered on top (package cart).
package dynamo

import (
	"time"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// Version is one causally tagged value of a key.
type Version struct {
	Clock vclock.VC
	Value string
}

// Config tunes a cluster. Zero fields take defaults.
type Config struct {
	Nodes  int // physical nodes (default 5)
	N      int // replicas per key (default 3)
	R      int // read quorum (default 2)
	W      int // write quorum (default 2)
	VNodes int // virtual nodes per physical node (default 16)

	// Sloppy enables sloppy quorums + hinted handoff (default true via
	// StrictQuorum=false).
	StrictQuorum bool
	// MsgLatency is per-hop network latency (default 1ms ± 0.5ms).
	MsgLatency simnet.Latency
	// CallTimeout bounds RPCs (default 25ms).
	CallTimeout time.Duration
	// HintRetry is how often a node retries handing hinted writes to
	// their proper home (default 20ms).
	HintRetry time.Duration
	// HintMaxTries bounds the retry polling; when the home stays dead
	// this long, the hint is left in place for anti-entropy to reconcile
	// (default 100 tries).
	HintMaxTries int
	// MerkleSync switches anti-entropy from whole-store exchange to
	// Merkle-tree comparison (Dynamo paper §4.7): only divergent key
	// ranges travel.
	MerkleSync bool
	// MerkleDepth is the tree depth for MerkleSync (default 8: 256
	// leaves).
	MerkleDepth int
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 5
	}
	if c.N == 0 {
		c.N = 3
	}
	if c.R == 0 {
		c.R = 2
	}
	if c.W == 0 {
		c.W = 2
	}
	if c.VNodes == 0 {
		c.VNodes = 16
	}
	if c.MsgLatency == nil {
		c.MsgLatency = simnet.Jitter{Base: time.Millisecond, Spread: 500 * time.Microsecond}
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 25 * time.Millisecond
	}
	if c.HintRetry == 0 {
		c.HintRetry = 20 * time.Millisecond
	}
	if c.HintMaxTries == 0 {
		c.HintMaxTries = 100
	}
	if c.MerkleDepth == 0 {
		c.MerkleDepth = 8
	}
	return c
}

// Metrics aggregates cluster-level observations.
type Metrics struct {
	GetLat stats.Histogram
	PutLat stats.Histogram

	Gets         stats.Counter
	Puts         stats.Counter
	GetFails     stats.Counter
	PutFails     stats.Counter
	SiblingGets  stats.Counter // GETs returning more than one version
	ReadRepairs  stats.Counter
	HintedWrites stats.Counter
	HintsFlushed stats.Counter
	AntiEntropy  stats.Counter // pairwise syncs performed

	// Anti-entropy transfer accounting, for the full-vs-Merkle ablation.
	SyncVersions stats.Counter // version records moved by syncs
	SyncDigests  stats.Counter // tree digests compared/shipped by syncs
}

// Cluster is a simulated Dynamo deployment plus its client entry points.
type Cluster struct {
	s    *sim.Sim
	net  *simnet.Network
	cfg  Config
	ring *ring
	node map[simnet.NodeID]*storeNode
	ids  []simnet.NodeID

	M Metrics
}

// New builds a cluster of cfg.Nodes nodes named n0, n1, ...
func New(s *sim.Sim, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		s:    s,
		net:  simnet.New(s, simnet.WithLatency(cfg.MsgLatency)),
		cfg:  cfg,
		node: make(map[simnet.NodeID]*storeNode),
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := simnet.NodeID("n" + itoa(i))
		c.ids = append(c.ids, id)
		c.node[id] = newStoreNode(c, id)
	}
	c.ring = newRing(c.ids, cfg.VNodes)
	return c
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// Net exposes the underlying network (fault injection, partitions).
func (c *Cluster) Net() *simnet.Network { return c.net }

// Nodes lists the physical node IDs.
func (c *Cluster) Nodes() []simnet.NodeID { return append([]simnet.NodeID(nil), c.ids...) }

// SetUp crashes or revives a node. A revival nudges every hint holder to
// retry delivery, standing in for the gossip-based failure detector that
// announces recoveries in the real system.
func (c *Cluster) SetUp(id simnet.NodeID, up bool) {
	c.net.SetUp(id, up)
	if up {
		for _, nid := range c.ids {
			n := c.node[nid]
			if len(n.hints) > 0 && !n.ep.Crashed() {
				n.armHintFlush()
			}
		}
	}
}

// coordinator picks the first live node of key's preference list to run a
// client request, like Dynamo's partition-aware client routing.
func (c *Cluster) coordinator(key string) *storeNode {
	var coord *storeNode
	c.ring.walk(key, func(id simnet.NodeID) bool {
		if c.net.IsUp(id) {
			coord = c.node[id]
			return false
		}
		return true
	})
	return coord
}

// Get reads key. done receives the surviving sibling versions (dominated
// versions pruned), a context clock to pass to the next Put, and ok=false
// if no read quorum was reachable. Absent keys yield ok=true with no
// versions.
func (c *Cluster) Get(key string, done func(versions []Version, ctx vclock.VC, ok bool)) {
	c.M.Gets.Inc()
	start := c.s.Now()
	coord := c.coordinator(key)
	if coord == nil {
		c.M.GetFails.Inc()
		done(nil, nil, false)
		return
	}
	coord.coordinateGet(key, func(versions []Version, ok bool) {
		if !ok {
			c.M.GetFails.Inc()
			done(nil, nil, false)
			return
		}
		c.M.GetLat.AddDur(c.s.Now().Sub(start))
		if len(versions) > 1 {
			c.M.SiblingGets.Inc()
		}
		ctx := vclock.New()
		for _, v := range versions {
			ctx = ctx.Merge(v.Clock)
		}
		done(versions, ctx, true)
	})
}

// Put writes value under key on behalf of actor (a session or client ID).
// ctx must carry the clock returned by the Get the caller based its update
// on (nil for a blind create); ticking the actor's own entry makes the new
// version dominate exactly what the caller saw. Two different actors
// writing blindly therefore become concurrent siblings — the behaviour the
// shopping cart of §6.1 depends on. done reports whether a write quorum
// acknowledged.
func (c *Cluster) Put(key, value string, ctx vclock.VC, actor string, done func(ok bool)) {
	c.M.Puts.Inc()
	start := c.s.Now()
	coord := c.coordinator(key)
	if coord == nil {
		c.M.PutFails.Inc()
		done(false)
		return
	}
	if actor == "" {
		actor = string(coord.id)
	}
	clock := NextClock(ctx, actor)
	coord.coordinatePut(key, Version{Clock: clock, Value: value}, func(ok bool) {
		if !ok {
			c.M.PutFails.Inc()
		} else {
			c.M.PutLat.AddDur(c.s.Now().Sub(start))
		}
		done(ok)
	})
}

// NextClock returns the clock a Put with the given context and actor will
// stamp on the new version: the context advanced by one tick of the
// actor's own entry. Sessions that issue sequences of writes use it to
// track their own causal history: merging the predicted clock into the
// next Put's context guarantees the actor's counter never regresses, even
// when a quorum read misses the session's latest write. Without that, two
// writes by one actor could carry identical clocks with different
// contents, and one would be silently dropped as a duplicate.
func NextClock(ctx vclock.VC, actor string) vclock.VC {
	clock := vclock.New()
	if ctx != nil {
		clock = ctx.Copy()
	}
	clock.Tick(actor)
	return clock
}

// AntiEntropyRound makes every node exchange and merge its store with one
// ring neighbour. Repeated rounds converge all replicas even after
// partitions; experiments call it on their own cadence.
func (c *Cluster) AntiEntropyRound() {
	for i, id := range c.ids {
		peer := c.ids[(i+1)%len(c.ids)]
		if c.net.IsUp(id) && c.net.IsUp(peer) && c.net.Reachable(id, peer) {
			c.node[id].syncWith(peer)
		}
	}
}

// ReplicaVersions reports the versions node id holds for key — test and
// audit access, not part of the client API.
func (c *Cluster) ReplicaVersions(id simnet.NodeID, key string) []Version {
	return append([]Version(nil), c.node[id].store[key]...)
}

// ForgetKey erases a key from one replica's local store — a test and
// experiment hook standing in for a lost disk block or bit rot, the kind
// of silent divergence anti-entropy exists to repair.
func (c *Cluster) ForgetKey(id simnet.NodeID, key string) {
	delete(c.node[id].store, key)
}

// InSync reports whether every pair of live nodes holds identical version
// sets for every key either holds.
func (c *Cluster) InSync() bool {
	for i := 0; i < len(c.ids); i++ {
		for j := i + 1; j < len(c.ids); j++ {
			a, b := c.node[c.ids[i]], c.node[c.ids[j]]
			keys := map[string]bool{}
			for k := range a.store {
				keys[k] = true
			}
			for k := range b.store {
				keys[k] = true
			}
			for k := range keys {
				if !sameVersions(a.store[k], b.store[k]) {
					return false
				}
			}
		}
	}
	return true
}

// quorumCall invokes method on each target and fires done exactly once:
// with ok=true as soon as `need` successes arrive, or ok=false when all
// calls resolved short of the quorum. Late responses still flow to
// straggler (for read repair and hint bookkeeping).
func quorumCall(ep *rpc.Endpoint, targets []target, method string, mkReq func(target) any,
	need int, done func(resps []any, ok bool), straggler func(t target, resp any)) {
	if len(targets) < need || need <= 0 {
		done(nil, len(targets) >= need)
		return
	}
	var resps []any
	fired := false
	resolved := 0
	oks := 0
	for _, tg := range targets {
		tg := tg
		ep.Call(tg.Node, method, mkReq(tg), func(resp any, ok bool) {
			resolved++
			if ok {
				oks++
				if fired {
					if straggler != nil {
						straggler(tg, resp)
					}
				} else {
					resps = append(resps, resp)
				}
			}
			if !fired && oks >= need {
				fired = true
				done(resps, true)
				return
			}
			if !fired && resolved == len(targets) {
				fired = true
				done(resps, false)
			}
		})
	}
}
