package simnet

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func pair(t *testing.T, opts ...Option) (*sim.Sim, *Network, *[]Message) {
	t.Helper()
	s := sim.New(7)
	n := New(s, opts...)
	var inbox []Message
	n.AddNode("a", func(m Message) {})
	n.AddNode("b", func(m Message) { inbox = append(inbox, m) })
	return s, n, &inbox
}

func TestDeliveryWithLatency(t *testing.T) {
	s, n, inbox := pair(t, WithLatency(Fixed(5*time.Millisecond)))
	n.Send("a", "b", "hello")
	s.Run()
	if len(*inbox) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(*inbox))
	}
	m := (*inbox)[0]
	if m.Payload != "hello" || m.From != "a" || m.To != "b" {
		t.Fatalf("bad message: %+v", m)
	}
	if s.Now() != sim.Time(5*time.Millisecond) {
		t.Fatalf("delivered at %v, want 5ms", s.Now())
	}
	if m.SentAt != 0 {
		t.Fatalf("SentAt = %v, want 0", m.SentAt)
	}
}

func TestSendToDownNodeDropped(t *testing.T) {
	s, n, inbox := pair(t)
	n.SetUp("b", false)
	n.Send("a", "b", 1)
	s.Run()
	if len(*inbox) != 0 {
		t.Fatal("message delivered to down node")
	}
	if c := n.Counters(); c.DownDrop != 1 {
		t.Fatalf("DownDrop = %d, want 1", c.DownDrop)
	}
}

func TestCrashWhileInFlightLosesMessage(t *testing.T) {
	s, n, inbox := pair(t, WithLatency(Fixed(10*time.Millisecond)))
	n.Send("a", "b", 1)
	s.After(5*time.Millisecond, func() { n.SetUp("b", false) })
	s.Run()
	if len(*inbox) != 0 {
		t.Fatal("message delivered despite receiver crashing mid-flight")
	}
}

func TestSendFromDownNodeIsNoop(t *testing.T) {
	s, n, inbox := pair(t)
	n.SetUp("a", false)
	n.Send("a", "b", 1)
	s.Run()
	if len(*inbox) != 0 {
		t.Fatal("crashed node managed to send")
	}
	if c := n.Counters(); c.Sent != 0 {
		t.Fatalf("Sent = %d, want 0", c.Sent)
	}
}

func TestRestartResumesDelivery(t *testing.T) {
	s, n, inbox := pair(t)
	n.SetUp("b", false)
	n.Send("a", "b", 1)
	s.Run()
	n.SetUp("b", true)
	n.Send("a", "b", 2)
	s.Run()
	if len(*inbox) != 1 || (*inbox)[0].Payload != 2 {
		t.Fatalf("inbox = %+v, want just the post-restart message", *inbox)
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	s, n, inbox := pair(t)
	n.Partition([]NodeID{"a"}, []NodeID{"b"})
	if n.Reachable("a", "b") {
		t.Fatal("partitioned nodes report reachable")
	}
	n.Send("a", "b", 1)
	s.Run()
	if len(*inbox) != 0 {
		t.Fatal("message crossed partition")
	}
	if c := n.Counters(); c.PartDrop != 1 {
		t.Fatalf("PartDrop = %d, want 1", c.PartDrop)
	}
	n.Heal()
	if !n.Reachable("a", "b") {
		t.Fatal("healed nodes report unreachable")
	}
	n.Send("a", "b", 2)
	s.Run()
	if len(*inbox) != 1 {
		t.Fatal("message not delivered after heal")
	}
}

func TestPartitionUnnamedNodesShareImplicitGroup(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	var got []Message
	n.AddNode("a", func(m Message) {})
	n.AddNode("b", func(m Message) { got = append(got, m) })
	n.AddNode("c", func(m Message) {})
	n.Partition([]NodeID{"c"}) // a and b unnamed: stay together
	n.Send("a", "b", 1)
	s.Run()
	if len(got) != 1 {
		t.Fatal("unnamed nodes should remain connected")
	}
	if n.Reachable("a", "c") {
		t.Fatal("named-off node still reachable")
	}
}

func TestLoss(t *testing.T) {
	s := sim.New(3)
	n := New(s, WithLoss(1.0))
	n.AddNode("a", func(Message) {})
	delivered := 0
	n.AddNode("b", func(Message) { delivered++ })
	for i := 0; i < 10; i++ {
		n.Send("a", "b", i)
	}
	s.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d with loss=1.0", delivered)
	}
	if c := n.Counters(); c.Lost != 10 {
		t.Fatalf("Lost = %d, want 10", c.Lost)
	}
}

func TestDuplication(t *testing.T) {
	s := sim.New(3)
	n := New(s, WithDuplication(1.0))
	n.AddNode("a", func(Message) {})
	delivered := 0
	n.AddNode("b", func(Message) { delivered++ })
	n.Send("a", "b", 1)
	s.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d with dup=1.0, want 2", delivered)
	}
	if c := n.Counters(); c.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", c.Duplicated)
	}
}

func TestPerLinkLatencyOverride(t *testing.T) {
	s := sim.New(1)
	n := New(s, WithLatency(Fixed(time.Millisecond)))
	var at sim.Time
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) { at = s.Now() })
	n.SetLinkLatency("a", "b", Fixed(time.Second))
	n.Send("a", "b", 1)
	s.Run()
	if at != sim.Time(time.Second) {
		t.Fatalf("delivered at %v, want 1s via link override", at)
	}
	// override is symmetric
	n.SetHandler("a", func(Message) { at = s.Now() })
	n.Send("b", "a", 1)
	s.Run()
	if at != sim.Time(2*time.Second) {
		t.Fatalf("reverse direction delivered at %v, want 2s", at)
	}
}

func TestJitterWithinBounds(t *testing.T) {
	s := sim.New(5)
	j := Jitter{Base: time.Millisecond, Spread: time.Millisecond}
	for i := 0; i < 100; i++ {
		d := j.Sample(s.Rand())
		if d < time.Millisecond || d >= 2*time.Millisecond {
			t.Fatalf("jitter sample %v out of [1ms,2ms)", d)
		}
	}
	zero := Jitter{Base: 3 * time.Millisecond}
	if zero.Sample(s.Rand()) != 3*time.Millisecond {
		t.Fatal("zero-spread jitter must return base")
	}
}

func TestCountersAndReset(t *testing.T) {
	s, n, _ := pair(t)
	n.Send("a", "b", 1)
	s.Run()
	c := n.Counters()
	if c.Sent != 1 || c.Delivered != 1 {
		t.Fatalf("counters = %+v", c)
	}
	n.ResetCounters()
	if n.Counters() != (Counters{}) {
		t.Fatal("ResetCounters did not zero")
	}
}

func TestDuplicateAddNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddNode twice did not panic")
		}
	}()
	s := sim.New(1)
	n := New(s)
	n.AddNode("a", func(Message) {})
	n.AddNode("a", func(Message) {})
}

func TestUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Send to unknown node did not panic")
		}
	}()
	s := sim.New(1)
	n := New(s)
	n.AddNode("a", func(Message) {})
	n.Send("a", "ghost", 1)
}

func TestNodesList(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) {})
	if len(n.Nodes()) != 2 {
		t.Fatalf("Nodes() = %v", n.Nodes())
	}
}
