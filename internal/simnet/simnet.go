// Package simnet provides a simulated message network on top of the
// discrete-event simulator in internal/sim.
//
// It models exactly the failure domain the paper assumes (§2.2): fail-fast
// nodes that are either functioning or stopped, connected by links with
// configurable latency, loss, and duplication, and subject to partitions.
// Message counts are tracked so experiments can charge protocols for their
// chatter — the heart of the DP1-vs-DP2 comparison is how many messages sit
// on the critical path of a WRITE.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// NodeID names a simulated node.
type NodeID string

// Message is a payload in flight between two nodes.
type Message struct {
	From, To NodeID
	Payload  any
	SentAt   sim.Time
}

// Handler consumes messages delivered to a node.
type Handler func(Message)

// Latency models per-message delivery delay.
type Latency interface {
	Sample(r *rand.Rand) time.Duration
}

// Fixed is a constant delivery delay.
type Fixed time.Duration

// Sample returns the fixed delay.
func (f Fixed) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// Jitter is a uniform delay in [Base, Base+Spread).
type Jitter struct {
	Base, Spread time.Duration
}

// Sample returns Base plus a uniform draw from [0, Spread).
func (j Jitter) Sample(r *rand.Rand) time.Duration {
	if j.Spread <= 0 {
		return j.Base
	}
	return j.Base + time.Duration(r.Int63n(int64(j.Spread)))
}

// Counters aggregates network-wide message statistics.
type Counters struct {
	Sent       int64 // Send calls
	Delivered  int64 // handler invocations
	Lost       int64 // dropped by random loss
	DownDrop   int64 // dropped because receiver was down at delivery
	PartDrop   int64 // dropped because sender and receiver were partitioned
	Duplicated int64 // extra deliveries injected by duplication
}

type node struct {
	handler Handler
	up      bool
	group   int // partition group; nodes in different groups cannot talk
}

// Network is a simulated message fabric. Construct with New.
type Network struct {
	s        *sim.Sim
	nodes    map[NodeID]*node
	latency  Latency
	links    map[[2]NodeID]Latency
	lossProb float64
	dupProb  float64
	counters Counters
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the default link latency model (default: Fixed 1ms).
func WithLatency(l Latency) Option { return func(n *Network) { n.latency = l } }

// WithLoss sets the probability a message is silently dropped.
func WithLoss(p float64) Option { return func(n *Network) { n.lossProb = p } }

// WithDuplication sets the probability a message is delivered twice.
func WithDuplication(p float64) Option { return func(n *Network) { n.dupProb = p } }

// New builds a network bound to simulator s.
func New(s *sim.Sim, opts ...Option) *Network {
	n := &Network{
		s:       s,
		nodes:   make(map[NodeID]*node),
		latency: Fixed(time.Millisecond),
		links:   make(map[[2]NodeID]Latency),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Sim returns the simulator the network is bound to.
func (n *Network) Sim() *sim.Sim { return n.s }

// AddNode registers a node and its message handler. Nodes start up (alive)
// and unpartitioned. Re-adding an existing node panics: silently replacing
// a live handler is always a test bug.
func (n *Network) AddNode(id NodeID, h Handler) {
	if _, ok := n.nodes[id]; ok {
		panic(fmt.Sprintf("simnet: node %q already registered", id))
	}
	n.nodes[id] = &node{handler: h, up: true}
}

// SetHandler replaces the handler of an existing node, for components that
// rebuild their state machine after a restart.
func (n *Network) SetHandler(id NodeID, h Handler) {
	n.mustNode(id).handler = h
}

// SetUp marks a node alive or crashed. Messages are not delivered to
// crashed nodes; a message in flight when its receiver crashes is lost,
// matching fail-fast semantics.
func (n *Network) SetUp(id NodeID, up bool) { n.mustNode(id).up = up }

// IsUp reports whether the node is alive.
func (n *Network) IsUp(id NodeID) bool { return n.mustNode(id).up }

// Partition splits the network into the given groups. Nodes in different
// groups cannot exchange messages; nodes not named in any group land in an
// implicit extra group together. Calling Partition replaces any previous
// partition.
func (n *Network) Partition(groups ...[]NodeID) {
	for _, nd := range n.nodes {
		nd.group = 0 // implicit group for unnamed nodes
	}
	for i, g := range groups {
		for _, id := range g {
			n.mustNode(id).group = i + 1
		}
	}
}

// Heal removes any partition.
func (n *Network) Heal() {
	for _, nd := range n.nodes {
		nd.group = 0
	}
}

// Reachable reports whether a message from a to b would currently be
// routed (both registered, not partitioned apart; says nothing about b
// being up at delivery time).
func (n *Network) Reachable(a, b NodeID) bool {
	na, nb := n.mustNode(a), n.mustNode(b)
	return na.group == nb.group
}

// SetLatency replaces the default link latency model. A nil model is
// ignored.
func (n *Network) SetLatency(l Latency) {
	if l != nil {
		n.latency = l
	}
}

// SetLinkLatency overrides latency on the (symmetric) link between a and b.
func (n *Network) SetLinkLatency(a, b NodeID, l Latency) {
	n.links[linkKey(a, b)] = l
}

func linkKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

func (n *Network) linkLatency(a, b NodeID) Latency {
	if l, ok := n.links[linkKey(a, b)]; ok {
		return l
	}
	return n.latency
}

// Send routes payload from one node to another, applying latency, loss,
// duplication, partitions, and crash state. Sending from a crashed node is
// a silent no-op (a stopped process sends nothing). Delivery happens on
// the simulator event loop.
func (n *Network) Send(from, to NodeID, payload any) {
	src := n.mustNode(from)
	dst := n.mustNode(to)
	if !src.up {
		return
	}
	n.counters.Sent++
	if src.group != dst.group {
		n.counters.PartDrop++
		return
	}
	if n.lossProb > 0 && n.s.Rand().Float64() < n.lossProb {
		n.counters.Lost++
		return
	}
	n.deliverAfter(from, to, payload)
	if n.dupProb > 0 && n.s.Rand().Float64() < n.dupProb {
		n.counters.Duplicated++
		n.deliverAfter(from, to, payload)
	}
}

func (n *Network) deliverAfter(from, to NodeID, payload any) {
	d := n.linkLatency(from, to).Sample(n.s.Rand())
	sentAt := n.s.Now()
	n.s.After(d, func() {
		dst := n.mustNode(to)
		if !dst.up {
			n.counters.DownDrop++
			return
		}
		n.counters.Delivered++
		dst.handler(Message{From: from, To: to, Payload: payload, SentAt: sentAt})
	})
}

// Counters returns a snapshot of network-wide message statistics.
func (n *Network) Counters() Counters { return n.counters }

// ResetCounters zeroes the message statistics, for experiments that warm
// up before measuring.
func (n *Network) ResetCounters() { n.counters = Counters{} }

// Nodes returns the registered node IDs in unspecified order.
func (n *Network) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	return ids
}

func (n *Network) mustNode(id NodeID) *node {
	nd, ok := n.nodes[id]
	if !ok {
		panic(fmt.Sprintf("simnet: unknown node %q", id))
	}
	return nd
}
