// Shopping cart on a Dynamo-style store — the paper's Example 4 (§6.1).
//
// Two browser sessions work on the same cart while a storage node dies
// mid-shopping. Sloppy quorums keep the cart writable, concurrent writes
// surface as sibling versions, and operation-centric reconciliation
// unions the recorded intentions so no ADD is lost and the DELETE stays
// deleted.
//
// Run with: go run ./examples/shoppingcart
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cart"
	"repro/internal/dynamo"
	"repro/internal/sim"
)

func run(out io.Writer) {
	s := sim.New(7)
	store := dynamo.New(s, dynamo.Config{Nodes: 5, N: 3, R: 2, W: 2})

	alice := cart.NewSession(store, "cart:family", "alice-laptop")
	bob := cart.NewSession(store, "cart:family", "bob-phone")

	say := func(who, what string) func(bool) {
		return func(ok bool) { fmt.Fprintf(out, "  [%s] %-28s ok=%v\n", who, what, ok) }
	}

	fmt.Fprintln(out, "two sessions, one cart:")
	alice.Add("milk", 2, say("alice", "add 2 milk"))
	alice.Add("book:quicksand", 1, say("alice", "add 1 book"))
	s.Run()

	fmt.Fprintln(out, "\na storage node fails; shopping continues (sloppy quorum):")
	store.SetUp("n1", false)
	// Both update concurrently from what they last saw — siblings ahead.
	alice.Delete("milk", say("alice", "delete milk"))
	bob.Add("cereal", 1, say("bob", "add 1 cereal"))
	bob.Add("milk", 1, say("bob", "add 1 milk (concurrent!)"))
	s.Run()

	fmt.Fprintln(out, "\nnode returns; hinted handoff and anti-entropy reconcile:")
	store.SetUp("n1", true)
	s.Run()
	store.AntiEntropyRound()
	s.Run()

	alice.Contents(func(items []cart.Item, ok bool) {
		fmt.Fprintf(out, "\nfinal cart (ok=%v):\n", ok)
		for _, it := range items {
			fmt.Fprintf(out, "  %-16s x%d\n", it.SKU, it.Qty)
		}
	})
	s.Run()

	m := &store.M
	fmt.Fprintf(out, "\nstore counters: %d gets, %d puts, %d sibling GETs, %d hinted writes, %d read repairs\n",
		m.Gets.Value(), m.Puts.Value(), m.SiblingGets.Value(), m.HintedWrites.Value(), m.ReadRepairs.Value())
	fmt.Fprintln(out, "note: alice's delete and bob's concurrent add-milk were siblings;")
	fmt.Fprintln(out, "the op union keeps bob's later add — intentions, not states, merge.")
}

func main() { run(os.Stdout) }
