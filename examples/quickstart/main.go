// Quickstart: a replicated, eventually consistent ledger on the public
// quicksand API in under a screen of code.
//
// Three replicas running on real goroutines (the default live transport)
// accept debits and credits on local knowledge (guesses), gossip their
// operation ledgers in the background, and converge to the same balance
// no matter which replica saw which operation first — the ACID 2.0
// pattern of Building on Quicksand (CIDR 2009), §6.5–§8.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	quicksand "repro"
)

// ledgerApp derives a balance by folding credit/debit operations.
type ledgerApp struct{}

func (ledgerApp) Init() int64 { return 0 }

func (ledgerApp) Step(bal int64, op quicksand.Op) int64 {
	if op.Kind == "credit" {
		return bal + op.Arg
	}
	return bal - op.Arg
}

func run(out io.Writer) {
	cluster := quicksand.New[int64](ledgerApp{}, nil,
		quicksand.WithReplicas(3),
		quicksand.WithGossipEvery(2*time.Millisecond))
	defer cluster.Close()
	ctx := context.Background()

	// Each replica accepts work independently — no coordination, no
	// waiting: every acceptance is a guess made on local knowledge.
	fmt.Fprintln(out, "submitting one operation at each replica:")
	for i, op := range []quicksand.Op{
		quicksand.NewOp("credit", "acct", 500),
		quicksand.NewOp("debit", "acct", 120),
		quicksand.NewOp("credit", "acct", 75),
	} {
		res, err := cluster.Submit(ctx, i, op)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(out, "  replica r%d accepted %s of %d¢: %v\n", i, op.Kind, op.Arg, res.Accepted)
	}

	// Bulk ingest goes through SubmitBatch: one blocking call, results
	// aligned with the ops by index.
	batch := []quicksand.Op{
		quicksand.NewOp("credit", "acct", 40),
		quicksand.NewOp("debit", "acct", 15),
	}
	results, err := cluster.SubmitBatch(ctx, 0, batch)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(out, "batch of %d at r0: all accepted=%v\n", len(batch),
		results[0].Accepted && results[1].Accepted)

	// Memories flow together (§7.6): background gossip spreads every
	// operation everywhere within a few rounds.
	deadline := time.Now().Add(2 * time.Second)
	for !cluster.Converged() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	fmt.Fprintln(out, "\nafter gossip, every replica tells the same story:")
	for i, bal := range cluster.States() {
		fmt.Fprintf(out, "  r%d balance: %d¢ (%d ops)\n", i, bal, cluster.Replica(i).OpCount())
	}
	fmt.Fprintf(out, "\nconverged: %v — same ops, same fold, same answer, any order\n", cluster.Converged())
}

func main() { run(os.Stdout) }
