// Quickstart: a replicated, eventually consistent counter-style account on
// the quicksand core in under a screen of code.
//
// Three replicas accept debits and credits on local knowledge (guesses),
// gossip their operation ledgers, and converge to the same balance no
// matter which replica saw which operation first — the ACID 2.0 pattern
// of Building on Quicksand (CIDR 2009), §6.5–§8.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/oplog"
	"repro/internal/policy"
	"repro/internal/sim"
)

// ledgerApp derives a balance by folding credit/debit operations.
type ledgerApp struct{}

func (ledgerApp) Init() int64 { return 0 }

func (ledgerApp) Step(bal int64, op oplog.Entry) int64 {
	if op.Kind == "credit" {
		return bal + op.Arg
	}
	return bal - op.Arg
}

func main() {
	s := sim.New(42)
	cluster := core.NewCluster[int64](s, core.Config{Replicas: 3}, ledgerApp{})

	// Each replica accepts work independently — no coordination, no
	// waiting: every acceptance is a guess made on local knowledge.
	submit := func(rep int, kind string, cents int64) {
		cluster.Submit(rep, kind, "acct", cents, "", policy.AlwaysAsync(), func(res core.Result) {
			fmt.Printf("  replica r%d accepted %s of %d¢ (latency %v)\n", rep, kind, cents, res.Latency)
		})
	}
	submit(0, "credit", 500)
	submit(1, "debit", 120)
	submit(2, "credit", 75)
	s.Run()

	fmt.Println("\nbefore gossip, each replica knows only what it saw:")
	for i, bal := range cluster.States() {
		fmt.Printf("  r%d balance: %d¢ (%d ops)\n", i, bal, cluster.Replica(i).OpCount())
	}

	// Memories flow together (§7.6): a few anti-entropy rounds spread
	// every operation everywhere.
	for round := 0; !cluster.Converged(); round++ {
		cluster.GossipRound()
		s.Run()
	}

	fmt.Println("\nafter gossip, every replica tells the same story:")
	for i, bal := range cluster.States() {
		fmt.Printf("  r%d balance: %d¢ (%d ops)\n", i, bal, cluster.Replica(i).OpCount())
	}
	fmt.Printf("\nconverged: %v — same ops, same fold, same answer, any order\n", cluster.Converged())
}
