package main

import (
	"io"
	"testing"
)

// TestRunSmoke drives the example's full scenario against a discarded
// writer: any regression in the walkthrough (a panic, a failed submit, a
// cluster that no longer converges) fails the test.
func TestRunSmoke(t *testing.T) { run(io.Discard) }
