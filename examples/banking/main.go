// Replicated check clearing — the paper's Example 5 (§6.2), written
// entirely against the public quicksand API.
//
// Two bank replicas clear checks against the same account while
// partitioned. Each guess looks fine locally; when the partition heals
// and the ledgers flow together, the merged truth shows an overdraft.
// The bank's designed apology — an automatic bounce fee — fires exactly
// once, and both replicas converge to the same (negative) balance. A
// second run with a Threshold risk policy shows §5.8's alternative:
// coordinate the big checks and pay latency instead of apologies.
//
// Run with: go run ./examples/banking
package main

import (
	"context"
	"fmt"
	"io"
	"maps"
	"os"
	"slices"

	quicksand "repro"
)

// Operation kinds.
const (
	kindDeposit = "deposit"
	kindClear   = "clear-check"
	kindFee     = "bounce-fee"
)

// uncovered records a check that cleared against insufficient funds in
// the canonical history.
type uncovered struct {
	detail string
	acct   string
	amount int64
}

// accounts is the state derived from the operation ledger.
type accounts struct {
	bal       map[string]int64
	uncovered []uncovered
}

// bankApp folds banking operations; deposits and debits commute, and the
// uncovered list depends only on the canonical fold order, which the
// engine fixes identically at every replica.
type bankApp struct{}

func (bankApp) Init() *accounts { return &accounts{bal: make(map[string]int64)} }

func (bankApp) Step(s *accounts, op quicksand.Op) *accounts {
	switch op.Kind {
	case kindDeposit:
		s.bal[op.Key] += op.Arg
	case kindClear:
		if s.bal[op.Key] < op.Arg {
			s.uncovered = append(s.uncovered, uncovered{
				detail: fmt.Sprintf("check %s for %d¢ cleared against insufficient funds", op.ID, op.Arg),
				acct:   op.Key,
				amount: op.Arg,
			})
		}
		s.bal[op.Key] -= op.Arg
	case kindFee:
		s.bal[op.Key] -= op.Arg
	}
	return s
}

// Snapshot returns a deep copy of the accounts. Implementing
// quicksand.Snapshotter lets the engine advance each replica's balance
// fold from a checkpoint instead of replaying the whole ledger on every
// admission check.
func (bankApp) Snapshot(s *accounts) *accounts {
	return &accounts{bal: maps.Clone(s.bal), uncovered: slices.Clone(s.uncovered)}
}

// noOverdraft is the probabilistically enforced business rule: each
// replica guesses from its local balance, and merged truth is swept for
// violations that become apologies.
func noOverdraft() quicksand.Rule[*accounts] {
	return quicksand.Rule[*accounts]{
		Name: "no-overdraft",
		Admit: func(s *accounts, op quicksand.Op) bool {
			return op.Kind != kindClear || s.bal[op.Key] >= op.Arg
		},
		Violated: func(s *accounts) []quicksand.Violation {
			out := make([]quicksand.Violation, 0, len(s.uncovered))
			for _, u := range s.uncovered {
				out = append(out, quicksand.Violation{Detail: u.detail, Key: u.acct, Amount: u.amount})
			}
			return out
		},
	}
}

// check builds a uniquified clear-check op: the check number is the
// uniquifier, so presenting the same check twice debits the account once.
func check(acct string, no int, cents int64) quicksand.Op {
	op := quicksand.NewOp(kindClear, acct, cents)
	op.ID = quicksand.CheckNumber("quicksand-bank", acct, no)
	return op
}

func converge(s *quicksand.Sim, c *quicksand.Cluster[*accounts]) {
	s.Run()
	for !c.Converged() {
		c.GossipRound()
		s.Run()
	}
}

func balance(c *quicksand.Cluster[*accounts], rep int, acct string) float64 {
	return float64(c.Replica(rep).State().bal[acct]) / 100
}

func run(out io.Writer) {
	s := quicksand.NewSim(11)
	tr := quicksand.NewSimTransport(s)
	b := quicksand.New[*accounts](bankApp{}, []quicksand.Rule[*accounts]{noOverdraft()},
		quicksand.WithTransport(tr), quicksand.WithReplicas(2))
	ctx := context.Background()

	// The designed apology (§5.6): business-specific compensation code
	// that charges a $30 fee, with no human in the loop.
	bounced := 0
	b.Apologies.AddHandler(func(a quicksand.Apology) bool {
		bounced++
		fee := quicksand.NewOp(kindFee, a.Key, 30_00)
		fee.Note = "overdraft fee for " + a.Detail
		b.SubmitAsync(0, fee, nil)
		return true
	})

	fmt.Fprintln(out, "opening deposit of $100, gossiped to both replicas:")
	res, err := b.Submit(ctx, 0, quicksand.NewOp(kindDeposit, "acct-007", 100_00))
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(out, "  deposit accepted=%v\n", res.Accepted)
	converge(s, b)
	fmt.Fprintf(out, "  r0 sees $%.2f, r1 sees $%.2f\n", balance(b, 0, "acct-007"), balance(b, 1, "acct-007"))

	fmt.Fprintln(out, "\nthe replicas partition; two $70 checks are presented, one at each:")
	tr.Partition([]string{"r0"}, []string{"r1"})
	for i, no := range []int{101, 102} {
		res, err := b.Submit(ctx, i, check("acct-007", no, 70_00))
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(out, "  r%d clears check #%d for $70: accepted=%v (its guess: funds are there)\n",
			i, no, res.Accepted)
	}

	fmt.Fprintln(out, "\npartition heals; memories flow together; the 'Oh, crap!' moment:")
	tr.Heal()
	converge(s, b)
	for _, a := range b.Apologies.Automated() {
		fmt.Fprintf(out, "  apology (automated): %s\n", a.Detail)
	}
	converge(s, b) // spread the bounce-fee compensation op too
	fmt.Fprintf(out, "\nbounce fees issued: %d (deduped across replicas)\n", bounced)
	fmt.Fprintf(out, "final balances: r0 $%.2f, r1 $%.2f — identical, order be damned\n",
		balance(b, 0, "acct-007"), balance(b, 1, "acct-007"))

	fmt.Fprintln(out, "\nnow the same scenario with the $10,000-style rule (coordinate big checks):")
	b2 := quicksand.New[*accounts](bankApp{}, []quicksand.Rule[*accounts]{noOverdraft()},
		quicksand.WithSim(s), quicksand.WithReplicas(2),
		quicksand.WithDefaultPolicy(quicksand.Threshold(50_00))) // coordinate anything >= $50
	if _, err := b2.Submit(ctx, 0, quicksand.NewOp(kindDeposit, "acct-009", 100_00)); err != nil {
		panic(err)
	}
	converge(s, b2)
	resA, err := b2.Submit(ctx, 0, check("acct-009", 201, 70_00))
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(out, "  r0 clears $70 check with coordination: accepted=%v\n", resA.Accepted)
	resB, err := b2.Submit(ctx, 1, check("acct-009", 202, 70_00))
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(out, "  r1 tries the second $70 check: accepted=%v (%s)\n", resB.Accepted, resB.Reason)
	fmt.Fprintf(out, "no apologies under coordination: %d — you paid latency instead (§5.8)\n",
		b2.Apologies.Total())

	// Act three: durability. The same bank with a disk under it — a
	// replica is hard-killed (its RAM and fold state destroyed, not
	// merely silenced), recovered from its journal and snapshot alone,
	// and the money is still there.
	fmt.Fprintln(out, "\nfinally, §3.2's log-as-checkpoint: the bank on disk, killed and recovered:")
	dir, err := os.MkdirTemp("", "quicksand-banking-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	s3 := quicksand.NewSim(23)
	b3 := quicksand.New[*accounts](bankApp{}, []quicksand.Rule[*accounts]{noOverdraft()},
		quicksand.WithSim(s3), quicksand.WithReplicas(2), quicksand.WithDurability(dir))
	defer b3.Close()
	if _, err := b3.Submit(ctx, 0, quicksand.NewOp(kindDeposit, "acct-011", 100_00)); err != nil {
		panic(err)
	}
	converge(s3, b3)
	fmt.Fprintf(out, "  $100 deposited and durable at both replicas (r1 holds %d ops)\n",
		b3.Replica(1).OpCount())

	b3.Kill(1)
	fmt.Fprintf(out, "  r1 is killed: RAM gone, it now derives $%.2f from %d ops\n",
		balance(b3, 1, "acct-011"), b3.Replica(1).OpCount())

	// Business continues on the survivor while r1 is dead.
	if _, err := b3.Submit(ctx, 0, check("acct-011", 301, 40_00)); err != nil {
		panic(err)
	}
	s3.Run()
	fmt.Fprintf(out, "  meanwhile r0 clears a $40 check on its own: r0 sees $%.2f\n", balance(b3, 0, "acct-011"))

	if err := b3.Recover(ctx, 1); err != nil {
		panic(err)
	}
	fmt.Fprintf(out, "  r1 recovers from disk alone: %d ops replayed, $%.2f rebuilt\n",
		b3.Replica(1).OpCount(), balance(b3, 1, "acct-011"))
	converge(s3, b3)
	fmt.Fprintf(out, "  gossip catches r1 up on the missed check: r0 $%.2f, r1 $%.2f — the crash changed nothing\n",
		balance(b3, 0, "acct-011"), balance(b3, 1, "acct-011"))
}

func main() { run(os.Stdout) }
