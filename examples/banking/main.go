// Replicated check clearing — the paper's Example 5 (§6.2).
//
// Two bank replicas clear checks against the same account while
// partitioned. Each guess looks fine locally; when the partition heals
// and the ledgers flow together, the merged truth shows an overdraft.
// The bank's designed apology — an automatic bounce fee — fires exactly
// once, and both replicas converge to the same (negative) balance.
//
// Run with: go run ./examples/banking
package main

import (
	"fmt"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func main() {
	s := sim.New(11)
	b := bank.New(s, core.Config{Replicas: 2}, 30_00) // $30 bounce fee

	fmt.Println("opening deposit of $100, gossiped to both replicas:")
	b.Deposit(0, "acct-007", 100_00, func(res core.Result) {
		fmt.Printf("  deposit accepted=%v\n", res.Accepted)
	})
	s.Run()
	for !b.C.Converged() {
		b.C.GossipRound()
		s.Run()
	}
	fmt.Printf("  r0 sees $%.2f, r1 sees $%.2f\n",
		float64(b.Balance(0, "acct-007"))/100, float64(b.Balance(1, "acct-007"))/100)

	fmt.Println("\nthe replicas partition; two $70 checks are presented, one at each:")
	b.C.Net().Partition([]simnet.NodeID{"r0"}, []simnet.NodeID{"r1"})
	b.ClearCheck(0, "acct-007", 101, 70_00, policy.AlwaysAsync(), func(res core.Result) {
		fmt.Printf("  r0 clears check #101 for $70: accepted=%v (its guess: funds are there)\n", res.Accepted)
	})
	b.ClearCheck(1, "acct-007", 102, 70_00, policy.AlwaysAsync(), func(res core.Result) {
		fmt.Printf("  r1 clears check #102 for $70: accepted=%v (it cannot see r0's clearing)\n", res.Accepted)
	})
	s.Run()

	fmt.Println("\npartition heals; memories flow together; the 'Oh, crap!' moment:")
	b.C.Net().Heal()
	for !b.C.Converged() {
		b.C.GossipRound()
		s.Run()
	}
	for _, a := range b.C.Apologies.Automated() {
		fmt.Printf("  apology (automated): %s\n", a.Detail)
	}
	// Spread the bounce-fee compensation op too.
	for !b.C.Converged() {
		b.C.GossipRound()
		s.Run()
	}
	fmt.Printf("\nbounce fees issued: %d (deduped across replicas)\n", b.Bounced.Value())
	fmt.Printf("final balances: r0 $%.2f, r1 $%.2f — identical, order be damned\n",
		float64(b.Balance(0, "acct-007"))/100, float64(b.Balance(1, "acct-007"))/100)

	fmt.Println("\nnow the same scenario with the $10,000-style rule (coordinate big checks):")
	b2 := bank.New(s, core.Config{Replicas: 2}, 30_00)
	b2.Deposit(0, "acct-009", 100_00, func(core.Result) {})
	s.Run()
	for !b2.C.Converged() {
		b2.C.GossipRound()
		s.Run()
	}
	pol := policy.Threshold(50_00) // coordinate anything >= $50
	b2.ClearCheck(0, "acct-009", 201, 70_00, pol, func(res core.Result) {
		fmt.Printf("  r0 clears $70 check with coordination: accepted=%v\n", res.Accepted)
	})
	s.Run()
	b2.ClearCheck(1, "acct-009", 202, 70_00, pol, func(res core.Result) {
		fmt.Printf("  r1 tries the second $70 check: accepted=%v (%s)\n", res.Accepted, res.Reason)
	})
	s.Run()
	fmt.Printf("bounce fees under coordination: %d — you paid latency instead of apologies (§5.8)\n",
		b2.Bounced.Value())
}
