// The seat reservation pattern — §7.3 of the paper.
//
// A scalper's bots grab every prime seat and never complete the purchase.
// With unbounded holds (the trusted-agent design) real buyers are starved;
// with a bounded "purchase pending" window and a durable cleanup queue,
// abandoned holds expire and the seats sell.
//
// Run with: go run ./examples/seatreservation
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/seats"
	"repro/internal/sim"
)

func sellOut(ttl time.Duration) (sold, turnedAway int, expired int64) {
	s := sim.New(3)
	const prime = 12
	v := seats.NewVenue(s, prime, ttl)

	// Scalper bots camp all prime seats, re-camping as holds expire.
	var camp func()
	camp = func() {
		for i := 0; i < prime; i++ {
			v.Hold(i, "scalper-bot")
		}
		if s.Now() < sim.Time(90*time.Minute) {
			s.After(time.Minute, camp)
		}
	}
	camp()

	// Real buyers arrive every 5 minutes and retry for 15 minutes.
	for n := 0; n < 18; n++ {
		n := n
		s.At(sim.Time(time.Duration(n+1)*5*time.Minute), func() {
			who := fmt.Sprintf("buyer-%02d", n)
			deadline := s.Now().Add(15 * time.Minute)
			var try func()
			try = func() {
				for i := 0; i < prime; i++ {
					if v.Hold(i, who) {
						v.Buy(i, who)
						sold++
						return
					}
				}
				if s.Now() < deadline {
					s.After(time.Minute, try)
				} else {
					turnedAway++
				}
			}
			try()
		})
	}
	s.RunUntil(sim.Time(2 * time.Hour))
	return sold, turnedAway, v.M.Expired.Value()
}

func run(out io.Writer) {
	fmt.Fprintln(out, "12 prime seats, a scalper who holds and never buys, 18 real buyers:")

	sold, away, _ := sellOut(0)
	fmt.Fprintf(out, "\nunbounded holds (trusted-agent design):\n")
	fmt.Fprintf(out, "  sold to real buyers: %d, turned away: %d\n", sold, away)
	fmt.Fprintln(out, "  the scalper parks 'purchase pending' forever — §7.3's exploit")

	sold, away, expired := sellOut(4 * time.Minute)
	fmt.Fprintf(out, "\n4-minute hold TTL + durable cleanup queue:\n")
	fmt.Fprintf(out, "  sold to real buyers: %d, turned away: %d, holds expired: %d\n", sold, away, expired)
	fmt.Fprintln(out, "  bounded pending time turns the exploit into background noise")
}

func main() { run(os.Stdout) }
