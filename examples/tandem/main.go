// Tandem NonStop, 1984 vs 1986 — the paper's Examples 1 and 2 (§3).
//
// The same transaction stream runs on both disk-process generations. DP1
// checkpoints every WRITE to the backup synchronously; DP2 lets log
// records lollygag in memory and group-flushes. Then a primary disk
// process dies mid-transaction: under DP1 the transaction survives
// transparently; under DP2 it aborts — §3.3's "acceptable erosion of
// behavior" — while committed work is redone from the audit trail.
//
// Run with: go run ./examples/tandem
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
	"repro/internal/tandem"
)

func runTxn(sys *tandem.System, keys []string, val string, done func(bool)) {
	t := sys.Begin()
	var step func(i int)
	step = func(i int) {
		if i == len(keys) {
			t.Commit(done)
			return
		}
		t.Write(keys[i], val, func(ok bool) {
			if !ok {
				t.Abort()
				done(false)
				return
			}
			step(i + 1)
		})
	}
	step(0)
}

func run(out io.Writer) {
	fmt.Fprintln(out, "part 1 — the price of a WRITE:")
	for _, mode := range []tandem.Mode{tandem.DP1, tandem.DP2} {
		s := sim.New(1)
		sys := tandem.New(s, tandem.Config{Mode: mode})
		for i := 0; i < 50; i++ {
			runTxn(sys, []string{fmt.Sprintf("k%02d", i)}, "v", func(bool) {})
		}
		s.Run()
		fmt.Fprintf(out, "  %-8s: write p50 %-8v  checkpoints/write %.2f\n",
			mode, sys.M.WriteLat.QuantileDur(0.5),
			float64(sys.M.WriteCkptMsgs.Value())/float64(sys.M.WriteLat.Count()))
	}

	fmt.Fprintln(out, "\npart 2 — a primary disk process dies mid-transaction:")
	for _, mode := range []tandem.Mode{tandem.DP1, tandem.DP2} {
		s := sim.New(1)
		sys := tandem.New(s, tandem.Config{Mode: mode, NumDP: 1})

		// Commit something first so there is state to protect.
		runTxn(sys, []string{"stable"}, "gold", func(ok bool) {
			fmt.Fprintf(out, "  %-8s: committed 'stable'=gold (%v)\n", mode, ok)
		})
		s.Run()

		txn := sys.Begin()
		txn.Write("inflight", "risky", func(ok bool) {
			sys.CrashPrimary(0)
			txn.Write("inflight2", "risky", func(ok2 bool) {
				txn.Commit(func(committed bool) {
					switch {
					case committed:
						fmt.Fprintf(out, "  %-8s: in-flight txn SURVIVED the crash (transparent takeover)\n", mode)
					default:
						fmt.Fprintf(out, "  %-8s: in-flight txn ABORTED by the takeover (acceptable erosion)\n", mode)
					}
				})
			})
		})
		s.Run()

		sys.Read("stable", func(v string, ok bool) {
			fmt.Fprintf(out, "  %-8s: committed data after takeover: stable=%q ok=%v (never lost)\n", mode, v, ok)
		})
		s.Run()
	}
}

func main() { run(os.Stdout) }
