package quicksand_test

// Wall-clock benchmarks of the ACID 2.0 engine on the live goroutine
// transport — the concurrency the simulator deliberately cannot exercise.
// Run with:
//
//	go test -bench=Live -benchmem
//
// These complement the deterministic experiment benchmarks in
// bench_test.go: the sim answers "what does the protocol cost", these
// answer "how fast does the engine go on real hardware".

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	quicksand "repro"
)

// sumApp is the cheapest commutative application: a running sum. With no
// rules attached, submits never fold state, so the benchmark measures the
// engine and transport, not the application.
type sumApp struct{}

func (sumApp) Init() int64                         { return 0 }
func (sumApp) Step(s int64, op quicksand.Op) int64 { return s + op.Arg }

// BenchmarkLiveSubmit measures single-op blocking submits spread across
// the replicas from parallel goroutines, with background gossip running.
func BenchmarkLiveSubmit(b *testing.B) {
	c := quicksand.New[int64](sumApp{}, nil,
		quicksand.WithGossipEvery(time.Millisecond))
	defer c.Close()
	ctx := context.Background()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rep := int(next.Add(1)) % c.Replicas()
		for pb.Next() {
			if _, err := c.Submit(ctx, rep, quicksand.NewOp("add", "k", 1)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkLiveSubmitBatch measures bulk ingest through SubmitBatch —
// the throughput path, amortizing the blocking machinery over 100 ops.
func BenchmarkLiveSubmitBatch(b *testing.B) {
	c := quicksand.New[int64](sumApp{}, nil,
		quicksand.WithGossipEvery(time.Millisecond))
	defer c.Close()
	ctx := context.Background()
	const batchSize = 100
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rep := int(next.Add(1)) % c.Replicas()
		batch := make([]quicksand.Op, batchSize)
		for pb.Next() {
			for i := range batch {
				batch[i] = quicksand.NewOp("add", "k", 1)
			}
			if _, err := c.SubmitBatch(ctx, rep, batch); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "ops/s")
}
