package quicksand_test

// Wall-clock benchmarks of the ACID 2.0 engine on the live goroutine
// transport — the concurrency the simulator deliberately cannot exercise.
// Run with:
//
//	go test -bench=Live -benchmem
//
// These complement the deterministic experiment benchmarks in
// bench_test.go: the sim answers "what does the protocol cost", these
// answer "how fast does the engine go on real hardware".

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	quicksand "repro"
)

// sumApp is the cheapest commutative application: a running sum. With no
// rules attached, submits never fold state, so the benchmark measures the
// engine and transport, not the application.
type sumApp struct{}

func (sumApp) Init() int64                         { return 0 }
func (sumApp) Step(s int64, op quicksand.Op) int64 { return s + op.Arg }

// benchLiveSubmit measures single-op blocking submits spread across the
// replicas from parallel goroutines, with background gossip running.
func benchLiveSubmit(b *testing.B, opts ...quicksand.Option) {
	b.Helper()
	b.ReportAllocs()
	c := quicksand.New[int64](sumApp{}, nil,
		append([]quicksand.Option{quicksand.WithGossipEvery(time.Millisecond)}, opts...)...)
	defer c.Close()
	ctx := context.Background()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rep := int(next.Add(1)) % c.Replicas()
		for pb.Next() {
			if _, err := c.Submit(ctx, rep, quicksand.NewOp("add", "k", 1)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkLiveSubmit is the engine's submit hot path as shipped: the
// batched single-writer ingest pipeline. Concurrent submitters enqueue
// into each replica's ring; the per-replica writer drains them in
// batches, so the replica lock, the fold advance, and the journal append
// are paid once per batch instead of once per op. Compare against
// BenchmarkLiveSubmitDirect for what the pipeline buys.
func BenchmarkLiveSubmit(b *testing.B) {
	benchLiveSubmit(b, quicksand.WithIngestBatch(256))
}

// BenchmarkLiveSubmitDirect is the per-op baseline: every submit takes
// the replica lock itself. Kept as the measured evidence of the
// pipeline's amortization.
func BenchmarkLiveSubmitDirect(b *testing.B) {
	benchLiveSubmit(b)
}

// admitAll is a rule whose Admit always passes: it forces every submit to
// derive replica state (the expensive part of admission) without
// constraining the workload — the fold benchmarks' stand-in for any
// rule-checked application.
func admitAll() quicksand.Rule[int64] {
	return quicksand.Rule[int64]{
		Name:  "admit-all",
		Admit: func(int64, quicksand.Op) bool { return true },
	}
}

// benchLiveFold pushes a 10k-op rule-checked workload through one replica
// on the live transport. Every submit admission-checks against derived
// state, so this measures exactly what the checkpointed fold engine
// changes: O(new entries) vs O(ledger) derivation per submit.
func benchLiveFold(b *testing.B, opts ...quicksand.Option) {
	b.Helper()
	const n = 10_000
	ctx := context.Background()
	var finalState int64
	var steps int64
	for i := 0; i < b.N; i++ {
		c := quicksand.New[int64](sumApp{}, []quicksand.Rule[int64]{admitAll()},
			append([]quicksand.Option{quicksand.WithReplicas(1)}, opts...)...)
		ops := make([]quicksand.Op, n)
		for j := range ops {
			ops[j] = quicksand.NewOp("add", "k", 1)
		}
		if _, err := c.SubmitBatch(ctx, 0, ops); err != nil {
			b.Fatal(err)
		}
		finalState = c.Replica(0).State()
		steps = c.M.FoldSteps.Value()
		c.Close()
	}
	b.StopTimer()
	if finalState != n {
		b.Fatalf("final state = %d, want %d", finalState, n)
	}
	b.ReportMetric(float64(steps)/n, "steps/op")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/op-submitted")
}

// BenchmarkLiveFold10kCheckpointed is the engine as shipped: admission
// advances the fold checkpoint by the one new entry per submit.
func BenchmarkLiveFold10kCheckpointed(b *testing.B) { benchLiveFold(b) }

// BenchmarkLiveFold10kFullRefold is the pre-checkpoint baseline: every
// admission replays the whole ledger. Kept as the measured evidence that
// the checkpointed engine is ≥10× faster on the same workload (both
// derive the identical final state; see also TestFoldEnginesAgree in
// api_test.go and experiment E13 for the sim-transport numbers).
func BenchmarkLiveFold10kFullRefold(b *testing.B) { benchLiveFold(b, quicksand.WithFullRefold()) }

// BenchmarkLiveSharded measures what sharding buys on real hardware:
// rule-checked submits of many keys, all offered at replica index 0, so
// the unsharded cluster serializes every op behind one replica mutex
// while the sharded cluster spreads the same stream across one
// independent lock/fold/gossip domain per shard. Near-linear ops/s
// scaling 1→4 shards on a multi-core box is the acceptance target.
func BenchmarkLiveSharded(b *testing.B) {
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := quicksand.New[int64](sumApp{}, []quicksand.Rule[int64]{admitAll()},
				quicksand.WithShards(shards),
				quicksand.WithGossipEvery(time.Millisecond))
			defer c.Close()
			ctx := context.Background()
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each worker walks the key space from its own offset so
				// the stream spreads across shards without coordination.
				i := int(next.Add(1)) * 7919
				for pb.Next() {
					if _, err := c.Submit(ctx, 0, quicksand.NewOp("add", keys[i%len(keys)], 1)); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkLiveShardedBatch is the scatter-gather path: one mixed-key
// batch per iteration, fanned out across shards on parallel goroutines
// by the live transport's Scatterer.
func BenchmarkLiveShardedBatch(b *testing.B) {
	const batchSize = 256
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := quicksand.New[int64](sumApp{}, []quicksand.Rule[int64]{admitAll()},
				quicksand.WithShards(shards),
				quicksand.WithGossipEvery(time.Millisecond))
			defer c.Close()
			ctx := context.Background()
			batch := make([]quicksand.Op, batchSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					batch[j] = quicksand.NewOp("add", fmt.Sprintf("k%03d", j), 1)
				}
				if _, err := c.SubmitBatch(ctx, 0, batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkLiveDurable measures what disk durability costs on the live
// transport, and what group commit buys back. Three arms over the same
// 256-op ingest batches on one replica (no gossip, so every journal
// append is an accepted op): no disk at all; the group-committing store
// — every accepted submit is fsynced before its Result resolves, but
// in-flight submits share flushes, §3.2's city bus; and the
// car-per-driver baseline paying one fsync per op. The fsyncs/op metric
// is the acceptance figure: the group arm must land at ≤0.1 (≥10×
// fewer fsyncs than one-per-op) while still acknowledging nothing
// before it is durable.
func BenchmarkLiveDurable(b *testing.B) {
	const batchSize = 256
	arms := []struct {
		name string
		opts func(b *testing.B) []quicksand.Option
	}{
		{"volatile", func(b *testing.B) []quicksand.Option { return nil }},
		{"group-commit", func(b *testing.B) []quicksand.Option {
			return []quicksand.Option{quicksand.WithDurability(b.TempDir())}
		}},
		{"group-commit-ingest", func(b *testing.B) []quicksand.Option {
			// The pipeline on top of group commit: a whole ingest batch is
			// staged as one chunk and boards one flush, so fsyncs/op drops
			// further and the commit fan-out resolves the batch together.
			return []quicksand.Option{quicksand.WithDurability(b.TempDir()), quicksand.WithIngestBatch(256)}
		}},
		{"fsync-per-op", func(b *testing.B) []quicksand.Option {
			return []quicksand.Option{quicksand.WithDurability(b.TempDir()), quicksand.WithFsyncEvery(-1)}
		}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			c := quicksand.New[int64](sumApp{}, nil,
				append([]quicksand.Option{quicksand.WithReplicas(1)}, arm.opts(b)...)...)
			defer c.Close()
			ctx := context.Background()
			batch := make([]quicksand.Op, batchSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					batch[j] = quicksand.NewOp("add", "k", 1)
				}
				if _, err := c.SubmitBatch(ctx, 0, batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := c.DurabilityStats()
			b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "ops/s")
			if st.Appended > 0 {
				b.ReportMetric(float64(st.Fsyncs)/float64(st.Appended), "fsyncs/op")
			}
		})
	}
}

// BenchmarkLiveSubmitBatch measures bulk ingest through SubmitBatch —
// the throughput path. The pipeline arm enqueues each 100-op batch as
// one contiguous run with no per-op closure and resolves it with one
// commit fan-out; direct is the per-op dispatch baseline. Allocations
// per op (reported by -benchmem, divided by 100) are part of the
// acceptance: the pipeline must at least halve them.
func BenchmarkLiveSubmitBatch(b *testing.B) {
	const batchSize = 100
	for _, arm := range []struct {
		name string
		opts []quicksand.Option
	}{
		{"direct", nil},
		{"pipeline", []quicksand.Option{quicksand.WithIngestBatch(256)}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			c := quicksand.New[int64](sumApp{}, nil,
				append([]quicksand.Option{quicksand.WithGossipEvery(time.Millisecond)}, arm.opts...)...)
			defer c.Close()
			ctx := context.Background()
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rep := int(next.Add(1)) % c.Replicas()
				batch := make([]quicksand.Op, batchSize)
				for pb.Next() {
					for i := range batch {
						batch[i] = quicksand.NewOp("add", "k", 1)
					}
					if _, err := c.SubmitBatch(ctx, rep, batch); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}
