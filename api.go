package quicksand

// This file is the public face of the ACID 2.0 replication engine: every
// type an application needs is re-exported here (as Go 1.24 generic type
// aliases, so values flow freely between the root package and internal
// packages), and every constructor and functional option is wrapped with
// its contract restated. External callers never import internal/.

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/uniq"
	"time"
)

// Engine types, re-exported from the core engine.
type (
	// Cluster is a set of eventually consistent replicas plus the shared
	// apology queue. Build one with New.
	Cluster[S any] = core.Cluster[S]
	// App folds operations into application state; Step must tolerate any
	// canonical fold order (the operations must commute).
	App[S any] = core.App[S]
	// Snapshotter is the optional App extension that unlocks checkpointed
	// incremental folds for reference-typed states: Snapshot must return a
	// deep copy. Value-typed states (no pointers, maps, slices, channels,
	// funcs, or interfaces reachable) get this for free; an App with a
	// reference-typed state that skips Snapshotter falls back to replaying
	// the ledger from genesis on every change.
	Snapshotter[S any] = core.Snapshotter[S]
	// Rule is a probabilistically enforced business rule: Admit gates
	// submits against the local guess, Violated sweeps merged state.
	Rule[S any] = core.Rule[S]
	// Replica is one eventually consistent copy of the application.
	Replica[S any] = core.Replica[S]
)

type (
	// Op is one typed business operation. Leave ID empty for an ingress
	// uniquifier, or assign one (a check number, a content hash) to make
	// retries idempotent.
	Op = core.Op
	// OpID is an operation uniquifier.
	OpID = uniq.ID
	// Result reports the outcome of one submit.
	Result = core.Result
	// Violation is one discovered breach of a business rule.
	Violation = core.Violation
	// Metrics aggregates cluster-wide observations.
	Metrics = core.Metrics
	// Option configures a Cluster at construction.
	Option = core.Option
	// SubmitOption configures one submit call.
	SubmitOption = core.SubmitOption
	// StoreStats counts a durable cluster's disk work: fsyncs completed,
	// entries journaled, snapshots (full and delta) written, segments
	// recycled, torn bytes truncated at recovery, and the worst single
	// writer stall. Cluster.DurabilityStats aggregates it across replicas.
	StoreStats = store.Stats
)

// The transport seam: the same cluster code runs on the deterministic
// simulator or on real goroutines.
type (
	// Transport carries the cluster's messages and clock.
	Transport = core.Transport
	// Node is one addressable participant on a Transport.
	Node = core.Node
	// Handler serves one RPC method on a Node.
	Handler = core.Handler
	// SimTransport runs replicas on the deterministic discrete-event
	// simulator; fixed seeds reproduce runs bit-for-bit.
	SimTransport = core.SimTransport
	// LiveTransport runs replicas on real goroutines and wall-clock time.
	LiveTransport = core.LiveTransport
)

// Simulation and latency-model types, for configuring transports.
type (
	// Sim is the deterministic discrete-event simulator.
	Sim = sim.Sim
	// Time is a transport timestamp: virtual on the simulator, elapsed
	// wall clock on the live transport.
	Time = sim.Time
	// Latency models per-message delivery delay.
	Latency = simnet.Latency
	// Fixed is a constant delivery delay.
	Fixed = simnet.Fixed
	// Jitter is a uniform delay in [Base, Base+Spread).
	Jitter = simnet.Jitter
)

// ErrStalled reports that a blocking Submit can never resolve because the
// transport ran out of work to do.
var ErrStalled = core.ErrStalled

// New builds a cluster of replicas named r0, r1, ... running app under
// rules (which may be nil). By default the cluster runs three replicas on
// a fresh live (goroutine) transport with the AlwaysAsync risk policy;
// options select the simulator, tune timeouts and latency, start
// background gossip, and shard the key space across independent replica
// groups (WithShards).
func New[S any](app App[S], rules []Rule[S], opts ...Option) *Cluster[S] {
	return core.New[S](app, rules, opts...)
}

// NewOp builds an operation from the fields every application uses: the
// business operation name, the object it targets, and its numeric
// argument.
func NewOp(kind, key string, arg int64) Op { return core.NewOp(kind, key, arg) }

// NewSim returns a deterministic discrete-event simulator seeded with
// seed: two simulators with the same seed and schedule produce identical
// histories.
func NewSim(seed int64) *Sim { return sim.New(seed) }

// NewSimTransport binds a transport to simulator s with its own private
// network.
func NewSimTransport(s *Sim) *SimTransport { return core.NewSimTransport(s) }

// NewLiveTransport returns a transport backed by real goroutines and
// wall-clock timers.
func NewLiveTransport() *LiveTransport { return core.NewLiveTransport() }

// WithReplicas sets the replica count per shard (default 3; values below
// 1 fall back to the default).
func WithReplicas(n int) Option { return core.WithReplicas(n) }

// WithShards partitions the key space across n independent replica
// groups by consistent hash of Op.Key (default 1 — unsharded). Each
// shard runs its own operation sets, fold checkpoints, journals, and
// gossip schedule, so operations on different shards share no lock and
// proceed in parallel on the live transport. Cluster.ShardOf reports the
// routing; ShardStates, ShardConverged, ShardReplica, and ShardMetrics
// observe one group. Per-key semantics are unchanged: a sharded run
// derives states that, merged per key, match the unsharded run of the
// same operations.
func WithShards(n int) Option { return core.WithShards(n) }

// WithLatency sets the per-message delivery latency model. On the
// simulator the default is 5ms ± 2ms; the live transport defaults to no
// artificial delay. New panics if the chosen transport cannot honour an
// explicit latency model.
func WithLatency(l Latency) Option { return core.WithLatency(l) }

// WithCallTimeout bounds every replica-to-replica call (default 100ms).
func WithCallTimeout(d time.Duration) Option { return core.WithCallTimeout(d) }

// WithGossipEvery starts background anti-entropy gossip at the given
// interval as soon as the cluster is built; Cluster.Close stops it.
func WithGossipEvery(d time.Duration) Option { return core.WithGossipEvery(d) }

// WithDefaultPolicy sets the risk policy used by submits that carry no
// WithPolicy option (default AlwaysAsync — guess on everything).
func WithDefaultPolicy(p Policy) Option { return core.WithDefaultPolicy(p) }

// WithTransport runs the cluster on the given transport (mutually
// exclusive with WithSim).
func WithTransport(t Transport) Option { return core.WithTransport(t) }

// WithSim runs the cluster on a fresh deterministic SimTransport bound to
// simulator s.
func WithSim(s *Sim) Option { return core.WithSim(s) }

// WithLocalReplicas marks the given replica indices as the ones this
// process hosts — the multi-process deployment mode, where each process
// runs one replica of every shard and a networked transport (one
// implementing the Transport seam over real connections, such as the
// daemon's TCP transport) carries gossip to the others. Remote replica
// indices become lightweight stubs: gossip targets them through the
// transport, States and Converged report only local knowledge, and
// Close touches only local stores.
func WithLocalReplicas(idxs ...int) Option { return core.WithLocalReplicas(idxs...) }

// NodeID names shard s's replica rep on a transport, matching the
// cluster's own naming: "r1" when shards is 1, "s2/r1" otherwise.
// Networked transports use it to map peer processes to node names.
func NodeID(shards, s, rep int) string { return core.NodeID(shards, s, rep) }

// WithFoldCheckpointEvery sets how many folded entries separate the
// periodic fold checkpoint snapshots (default 1024). Snapshots bound the
// replay a behind-watermark gossip merge forces; 0 disables them.
func WithFoldCheckpointEvery(n int) Option { return core.WithFoldCheckpointEvery(n) }

// WithFullRefold disables checkpointed incremental folds: every state
// derivation after a change replays the whole operation set from a fresh
// Init — the O(ledger) baseline, kept for differential testing and
// benchmarking.
func WithFullRefold() Option { return core.WithFullRefold() }

// WithDurability gives every replica a disk-backed store under dir: an
// append-only CRC-checked journal of its operations plus periodic
// atomic snapshot files. Submits and gossip pushes are acknowledged
// only once group-committed to disk, so everything accepted survives a
// hard crash: Cluster.Kill drops a replica's entire RAM,
// Cluster.Recover reloads it from disk and rejoins gossip, and New
// itself cold-starts from whatever an earlier incarnation left in dir.
func WithDurability(dir string) Option { return core.WithDurability(dir) }

// WithFsyncEvery tunes WithDurability's group-commit fsync loop
// (§3.2's city-bus economics): d > 0 holds each flush up to d so more
// commits board it; 0 (default) departs adaptively — immediately when
// the staged backlog is shallow, coalescing under load, with the hold
// ceiling steered by an EWMA of recent fsync cost; d < 0 pays one fsync
// per operation — the car-per-driver baseline kept for measuring what
// group commit saves.
func WithFsyncEvery(d time.Duration) Option { return core.WithFsyncEvery(d) }

// WithFsyncDelay injects d of extra latency before every journal fsync
// — the slow-disk fault for chaos scenarios. Timing stretches, outcomes
// do not: accepted sets, final states, and apology ledgers stay equal
// to an undelayed run of the same operations. No effect without
// WithDurability.
func WithFsyncDelay(d time.Duration) Option { return core.WithFsyncDelay(d) }

// WithIngestBatch routes asynchronous submits through a per-replica
// single-writer ingest pipeline draining a bounded ring in batches of at
// most n: the replica lock is taken once per batch, admission and fold
// steps run across the whole batch, accepted entries reach the journal
// and the durable store in one vectorized append (one flush covers the
// batch), and all results resolve in one commit fan-out — group-commit
// economics applied to the lock and the fold, not just the fsync.
// Results are observationally identical to the per-op default: same
// acceptances, declines, apologies, and final states. n < 1 (the
// default) keeps the direct per-op path; on the simulator the ring is
// drained inline so runs stay deterministic. Policy-coordinated (Sync)
// submits ride the same queue — initiated in arrival order, so they
// never overtake an earlier guess on their key — and a full ring
// briefly blocks submitters (backpressure) until the writer drains.
func WithIngestBatch(n int) Option { return core.WithIngestBatch(n) }

// WithSnapshotEvery sets how many journaled operations separate durable
// snapshots (default 4096) — the ledger prefix serialized at a
// fold-checkpoint boundary, which bounds recovery replay and lets
// journal segments below both the snapshot and every gossip peer's
// acknowledgement be deleted. 0 disables snapshots.
func WithSnapshotEvery(n int) Option { return core.WithSnapshotEvery(n) }

// WithSnapshotChain sets how many snapshot cuts share one full-ledger
// snapshot (default 8): the cuts in between are incremental deltas
// holding only the entries since the previous cut, chained to the full
// root, so a steady-state cut costs the write rate rather than the
// ledger size. Recovery folds the newest intact chain and falls back to
// a chain prefix losslessly if the newest delta is torn. k = 1 makes
// every cut full. No effect without WithDurability.
func WithSnapshotChain(k int) Option { return core.WithSnapshotChain(k) }

// WithPolicy routes one submit with p instead of the cluster's default
// risk policy — the per-operation "stomach for risk" dial of §5.5.
func WithPolicy(p Policy) SubmitOption { return core.WithPolicy(p) }

// WithNote attaches a free-form annotation to the operation.
func WithNote(note string) SubmitOption { return core.WithNote(note) }

// ContentID derives an operation ID from the request body itself — the
// MD5 trick of §2.1: retries of a byte-identical request map to the same
// ID with no client cooperation needed.
func ContentID(request []byte) OpID { return uniq.ContentID(request) }

// CheckNumber builds the banking uniquifier of §6.2: bank-id +
// account-number + check-number identify a check uniquely.
func CheckNumber(bank, account string, number int) OpID {
	return uniq.CheckNumber(bank, account, number)
}
