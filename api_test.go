package quicksand_test

// The API-level suite for the public quicksand surface. Every shared test
// runs twice — once on the deterministic SimTransport and once on the
// live goroutine transport — proving the same cluster code behaves
// identically across the transport seam. Transport-specific behaviour
// (virtual-time cancellation, wall-clock deadlines, stall detection) is
// tested per transport below.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	quicksand "repro"
)

// harness abstracts what the shared suite needs from a transport: build a
// cluster, let in-flight work finish, and drive gossip to convergence.
type harness struct {
	name       string
	newCluster func(t *testing.T, opts ...quicksand.Option) (*quicksand.Cluster[balances], *driver)
}

type driver struct {
	transport quicksand.Transport
	settle    func()                                             // let in-flight work finish
	converge  func(t *testing.T, c *quicksand.Cluster[balances]) // gossip until converged
}

func harnesses() []harness {
	return []harness{
		{
			name: "sim",
			newCluster: func(t *testing.T, opts ...quicksand.Option) (*quicksand.Cluster[balances], *driver) {
				s := quicksand.NewSim(1)
				tr := quicksand.NewSimTransport(s)
				c := quicksand.New[balances](exampleApp{}, []quicksand.Rule[balances]{noOverdraft()},
					append([]quicksand.Option{quicksand.WithTransport(tr)}, opts...)...)
				return c, &driver{
					transport: tr,
					settle:    s.Run,
					converge: func(t *testing.T, c *quicksand.Cluster[balances]) {
						t.Helper()
						s.Run()
						for i := 0; i < 2*c.Replicas() && !c.Converged(); i++ {
							c.GossipRound()
							s.Run()
						}
						if !c.Converged() {
							t.Fatal("sim cluster did not converge")
						}
					},
				}
			},
		},
		{
			name: "live",
			newCluster: func(t *testing.T, opts ...quicksand.Option) (*quicksand.Cluster[balances], *driver) {
				tr := quicksand.NewLiveTransport()
				c := quicksand.New[balances](exampleApp{}, []quicksand.Rule[balances]{noOverdraft()},
					append([]quicksand.Option{quicksand.WithTransport(tr)}, opts...)...)
				return c, &driver{
					transport: tr,
					settle:    func() { time.Sleep(20 * time.Millisecond) },
					converge: func(t *testing.T, c *quicksand.Cluster[balances]) {
						t.Helper()
						deadline := time.Now().Add(5 * time.Second)
						for !c.Converged() {
							if time.Now().After(deadline) {
								t.Fatal("live cluster did not converge")
							}
							c.GossipRound()
							time.Sleep(2 * time.Millisecond)
						}
					},
				}
			},
		},
	}
}

func forEachTransport(t *testing.T, fn func(t *testing.T, h harness)) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) { fn(t, h) })
	}
}

func TestOptionDefaults(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		c, _ := h.newCluster(t)
		if got := c.Replicas(); got != 3 {
			t.Fatalf("default replicas = %d, want 3", got)
		}
		if got := c.CallTimeout(); got != 100*time.Millisecond {
			t.Fatalf("default call timeout = %v, want 100ms", got)
		}
		if got := c.GossipInterval(); got != 0 {
			t.Fatalf("default gossip interval = %v, want 0 (manual)", got)
		}
		// The default risk policy is AlwaysAsync: a submit with no options
		// takes the guess path.
		res, err := c.Submit(context.Background(), 0, quicksand.NewOp("deposit", "acct", 100))
		if err != nil || !res.Accepted {
			t.Fatalf("default submit = %+v, %v", res, err)
		}
		if res.Decision != quicksand.Async {
			t.Fatalf("default decision = %v, want async", res.Decision)
		}
	})
}

func TestOptionsOverrideDefaults(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		c, _ := h.newCluster(t,
			quicksand.WithReplicas(5),
			quicksand.WithCallTimeout(250*time.Millisecond),
			quicksand.WithDefaultPolicy(quicksand.AlwaysSync()))
		if got := c.Replicas(); got != 5 {
			t.Fatalf("replicas = %d, want 5", got)
		}
		if got := c.CallTimeout(); got != 250*time.Millisecond {
			t.Fatalf("call timeout = %v, want 250ms", got)
		}
		res, err := c.Submit(context.Background(), 0, quicksand.NewOp("deposit", "acct", 100))
		if err != nil || !res.Accepted {
			t.Fatalf("submit = %+v, %v", res, err)
		}
		if res.Decision != quicksand.Sync {
			t.Fatalf("decision = %v, want sync (WithDefaultPolicy)", res.Decision)
		}
	})
}

func TestSubmitIdempotentReaccept(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		c, _ := h.newCluster(t)
		ctx := context.Background()
		op := quicksand.NewOp("deposit", "acct", 10)
		op.ID = quicksand.OpID("check-42")
		first, err := c.Submit(ctx, 0, op)
		if err != nil || !first.Accepted {
			t.Fatalf("first = %+v, %v", first, err)
		}
		// The same uniquified op presented again (a client retry) must be
		// accepted without double-applying.
		second, err := c.Submit(ctx, 0, op)
		if err != nil || !second.Accepted {
			t.Fatalf("second = %+v, %v", second, err)
		}
		if n := c.Replica(0).OpCount(); n != 1 {
			t.Fatalf("op recorded %d times", n)
		}
		if bal := c.Replica(0).State()["acct"]; bal != 10 {
			t.Fatalf("balance = %d, double-applied", bal)
		}
	})
}

func TestSubmitBatchOrdering(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		c, _ := h.newCluster(t)
		const n = 10
		ops := make([]quicksand.Op, n)
		var want int64
		for i := range ops {
			ops[i] = quicksand.NewOp("deposit", "acct", int64(i+1))
			ops[i].ID = quicksand.OpID(fmt.Sprintf("batch-%03d", i))
			want += int64(i + 1)
		}
		results, err := c.SubmitBatch(context.Background(), 0, ops)
		if err != nil {
			t.Fatalf("batch error: %v", err)
		}
		if len(results) != n {
			t.Fatalf("got %d results, want %d", len(results), n)
		}
		for i, res := range results {
			if !res.Accepted {
				t.Fatalf("op %d declined: %s", i, res.Reason)
			}
			if res.Op.ID != ops[i].ID {
				t.Fatalf("result %d carries op %q, want %q — ordering lost", i, res.Op.ID, ops[i].ID)
			}
		}
		if bal := c.Replica(0).State()["acct"]; bal != want {
			t.Fatalf("balance = %d, want %d", bal, want)
		}
	})
}

func TestSyncSubmitReachesAllReplicas(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		c, d := h.newCluster(t)
		res, err := c.Submit(context.Background(), 0, quicksand.NewOp("deposit", "acct", 100),
			quicksand.WithPolicy(quicksand.AlwaysSync()))
		if err != nil || !res.Accepted {
			t.Fatalf("sync submit = %+v, %v", res, err)
		}
		d.settle()
		for i := 0; i < c.Replicas(); i++ {
			if bal := c.Replica(i).State()["acct"]; bal != 100 {
				t.Fatalf("replica %d balance = %d, want 100", i, bal)
			}
		}
	})
}

func TestSyncSubmitConservativeWhenReplicaDown(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		c, d := h.newCluster(t, quicksand.WithCallTimeout(30*time.Millisecond))
		d.transport.SetUp("r2", false)
		res, err := c.Submit(context.Background(), 0, quicksand.NewOp("deposit", "acct", 100),
			quicksand.WithPolicy(quicksand.AlwaysSync()))
		if err != nil {
			t.Fatalf("submit error: %v", err)
		}
		if res.Accepted {
			t.Fatal("sync submit succeeded with a replica down; must be conservative")
		}
		// The async path keeps working — availability vs consistency.
		res, err = c.Submit(context.Background(), 0, quicksand.NewOp("deposit", "acct", 100))
		if err != nil || !res.Accepted {
			t.Fatalf("async submit must survive a down peer: %+v, %v", res, err)
		}
	})
}

func TestGossipConvergesAcrossReplicas(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		c, d := h.newCluster(t)
		ctx := context.Background()
		var want int64
		for i := 0; i < c.Replicas(); i++ {
			arg := int64(10 * (i + 1))
			want += arg
			res, err := c.Submit(ctx, i, quicksand.NewOp("deposit", "acct", arg))
			if err != nil || !res.Accepted {
				t.Fatalf("submit at r%d = %+v, %v", i, res, err)
			}
		}
		d.converge(t, c)
		for i, st := range c.States() {
			if st["acct"] != want {
				t.Fatalf("replica %d balance = %d, want %d", i, st["acct"], want)
			}
		}
	})
}

func TestSubmitAtUnknownReplicaErrors(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		c, _ := h.newCluster(t)
		if _, err := c.Submit(context.Background(), 7, quicksand.NewOp("deposit", "acct", 1)); err == nil {
			t.Fatal("submit at unknown replica must error")
		}
		if _, err := c.SubmitBatch(context.Background(), -1, []quicksand.Op{quicksand.NewOp("d", "k", 1)}); err == nil {
			t.Fatal("batch at unknown replica must error")
		}
	})
}

func TestSubmitCancelledBeforeDispatch(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		c, _ := h.newCluster(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := c.Submit(ctx, 0, quicksand.NewOp("deposit", "acct", 1)); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if n := c.Replica(0).OpCount(); n != 0 {
			t.Fatalf("cancelled submit recorded %d ops", n)
		}
	})
}

// TestSimSubmitCancelledMidSync cancels a context from a simulated event
// while a coordinated submit is waiting on an unreachable peer: the
// blocking Submit must return the cancellation at the exact virtual time,
// long before the 100ms call timeout would have resolved it.
func TestSimSubmitCancelledMidSync(t *testing.T) {
	s := quicksand.NewSim(7)
	tr := quicksand.NewSimTransport(s)
	c := quicksand.New[balances](exampleApp{}, nil,
		quicksand.WithTransport(tr), quicksand.WithReplicas(2))
	tr.SetUp("r1", false)
	ctx, cancel := context.WithCancel(context.Background())
	s.After(10*time.Millisecond, cancel)
	_, err := c.Submit(ctx, 0, quicksand.NewOp("deposit", "acct", 1),
		quicksand.WithPolicy(quicksand.AlwaysSync()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if now := s.Now(); now != quicksand.Time(10*time.Millisecond) {
		t.Fatalf("cancellation observed at %v, want exactly 10ms of virtual time", now)
	}
}

// TestLiveSubmitCancelledMidSync is the wall-clock twin: a coordinated
// submit against a crashed peer blocks until its deadline fires, well
// before the 500ms call timeout.
func TestLiveSubmitCancelledMidSync(t *testing.T) {
	tr := quicksand.NewLiveTransport()
	c := quicksand.New[balances](exampleApp{}, nil,
		quicksand.WithTransport(tr), quicksand.WithReplicas(2),
		quicksand.WithCallTimeout(500*time.Millisecond))
	tr.SetUp("r1", false)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, 0, quicksand.NewOp("deposit", "acct", 1),
		quicksand.WithPolicy(quicksand.AlwaysSync()))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Fatalf("cancellation took %v; the call timeout resolved first", elapsed)
	}
}

// TestSimAwaitStalls proves the simulator reports a submit that can never
// resolve instead of spinning: an empty event queue with the result still
// pending is ErrStalled.
func TestSimAwaitStalls(t *testing.T) {
	tr := quicksand.NewSimTransport(quicksand.NewSim(1))
	err := tr.Await(context.Background(), make(chan struct{}))
	if !errors.Is(err, quicksand.ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

// TestSimBackgroundGossip exercises WithGossipEvery on virtual time.
func TestSimBackgroundGossip(t *testing.T) {
	s := quicksand.NewSim(3)
	c := quicksand.New[balances](exampleApp{}, nil,
		quicksand.WithSim(s), quicksand.WithGossipEvery(5*time.Millisecond))
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < c.Replicas(); i++ {
		if _, err := c.Submit(ctx, i, quicksand.NewOp("deposit", "acct", 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.RunFor(100 * time.Millisecond)
	if !c.Converged() {
		t.Fatal("background gossip did not converge within 100ms of virtual time")
	}
	c.Close()
	s.Run() // queue drains once gossip is stopped
}

// TestLiveBackgroundGossip exercises WithGossipEvery on wall-clock time.
func TestLiveBackgroundGossip(t *testing.T) {
	c := quicksand.New[balances](exampleApp{}, nil,
		quicksand.WithGossipEvery(2*time.Millisecond))
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < c.Replicas(); i++ {
		if _, err := c.Submit(ctx, i, quicksand.NewOp("deposit", "acct", 1)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !c.Converged() {
		if time.Now().After(deadline) {
			t.Fatal("background gossip did not converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLiveConcurrentSubmitters hammers one live cluster from many
// goroutines — the scenario the simulator cannot exercise — and checks
// nothing is lost or double-counted after convergence.
func TestLiveConcurrentSubmitters(t *testing.T) {
	c := quicksand.New[balances](exampleApp{}, nil,
		quicksand.WithGossipEvery(time.Millisecond))
	defer c.Close()
	const workers, perWorker = 8, 25
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			ctx := context.Background()
			for i := 0; i < perWorker; i++ {
				op := quicksand.NewOp("deposit", "acct", 1)
				op.ID = quicksand.OpID(fmt.Sprintf("w%d-%d", w, i))
				if _, err := c.Submit(ctx, w%c.Replicas(), op); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !c.Converged() {
		if time.Now().After(deadline) {
			t.Fatal("did not converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i, st := range c.States() {
		if st["acct"] != workers*perWorker {
			t.Fatalf("replica %d balance = %d, want %d", i, st["acct"], workers*perWorker)
		}
	}
}

// TestShardedMatchesUnsharded is the acceptance check for the shard
// layer: the same op sequence run on one shard and on four must produce
// per-key identical states — on both transports. Every op for a given
// key is submitted at the same replica index, so admission guesses see
// the same per-key history in both runs (gossip interleavings differ,
// but deposits and covered checks commute); after convergence the
// sharded per-group states, merged key-by-key, must equal the unsharded
// state exactly.
func TestShardedMatchesUnsharded(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		const nKeys, nOps = 24, 180
		key := func(k int) string { return fmt.Sprintf("acct-%02d", k) }
		run := func(shards int) balances {
			c, d := h.newCluster(t, quicksand.WithShards(shards))
			defer c.Close()
			ctx := context.Background()
			repOf := func(k int) int { return k % c.Replicas() }
			// Seed every account so the later checks are always covered by
			// the submitting replica's local guess — admission decisions
			// are then identical in both runs.
			for k := 0; k < nKeys; k++ {
				op := quicksand.NewOp("deposit", key(k), 10_000)
				op.ID = quicksand.OpID(fmt.Sprintf("seed-%02d", k))
				if res, err := c.Submit(ctx, repOf(k), op); err != nil || !res.Accepted {
					t.Fatalf("seed %d = %+v, %v", k, res, err)
				}
			}
			for i := 0; i < nOps; i++ {
				k := (i * 13) % nKeys
				kind, arg := "deposit", int64(5+i%7)
				if i%3 == 0 {
					kind, arg = "clear-check", int64(1+i%5)
				}
				op := quicksand.NewOp(kind, key(k), arg)
				op.ID = quicksand.OpID(fmt.Sprintf("diff-%03d", i))
				if res, err := c.Submit(ctx, repOf(k), op); err != nil || !res.Accepted {
					t.Fatalf("op %d = %+v, %v", i, res, err)
				}
				if i%17 == 0 {
					c.GossipRound()
					d.settle()
				}
			}
			d.converge(t, c)
			// Merge the converged per-shard states key-by-key; along the
			// way prove replicas within each group agree and no key leaked
			// off its home shard.
			merged := balances{}
			for s := 0; s < c.Shards(); s++ {
				states := c.ShardStates(s)
				for i := 1; i < len(states); i++ {
					for acct, bal := range states[0] {
						if states[i][acct] != bal {
							t.Fatalf("shard %d replicas diverge on %s: %d vs %d", s, acct, bal, states[i][acct])
						}
					}
				}
				for acct, bal := range states[0] {
					if c.ShardOf(acct) != s {
						t.Fatalf("key %s leaked onto shard %d (home %d)", acct, s, c.ShardOf(acct))
					}
					if _, dup := merged[acct]; dup {
						t.Fatalf("key %s present on two shards", acct)
					}
					merged[acct] = bal
				}
			}
			return merged
		}
		unsharded := run(1)
		sharded := run(4)
		if len(unsharded) != len(sharded) {
			t.Fatalf("key sets differ: %d unsharded vs %d sharded", len(unsharded), len(sharded))
		}
		for acct, bal := range unsharded {
			if sharded[acct] != bal {
				t.Fatalf("per-key state diverged on %s: unsharded %d, sharded %d", acct, bal, sharded[acct])
			}
		}
	})
}

// TestShardedBatchScatterGather proves SubmitBatch fans a mixed-key batch
// out across shards while preserving result order by index and per-key
// submission order — on both transports (parallel scatter on live,
// sequential on sim).
func TestShardedBatchScatterGather(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		c, _ := h.newCluster(t, quicksand.WithShards(4))
		defer c.Close()
		const n = 80
		ops := make([]quicksand.Op, n)
		want := map[string]int64{}
		for i := range ops {
			k := fmt.Sprintf("acct-%02d", i%10)
			ops[i] = quicksand.NewOp("deposit", k, int64(i+1))
			ops[i].ID = quicksand.OpID(fmt.Sprintf("batch-%03d", i))
			want[k] += int64(i + 1)
		}
		results, err := c.SubmitBatch(context.Background(), 0, ops)
		if err != nil {
			t.Fatalf("batch error: %v", err)
		}
		for i, res := range results {
			if !res.Accepted {
				t.Fatalf("op %d declined: %s", i, res.Reason)
			}
			if res.Op.ID != ops[i].ID {
				t.Fatalf("result %d carries op %q, want %q — scatter lost the ordering", i, res.Op.ID, ops[i].ID)
			}
		}
		for k, sum := range want {
			got := c.ShardReplica(c.ShardOf(k), 0).State()[k]
			if got != sum {
				t.Fatalf("key %s = %d at its home shard, want %d", k, got, sum)
			}
		}
	})
}

// TestFoldEnginesAgree is the acceptance check for checkpointed state
// derivation: the incremental engine and the WithFullRefold baseline must
// derive identical final states from the same rule-checked workload — on
// both transports. Deposits commute, so the final balances are a pure
// function of the converged operation set no matter how gossip interleaved
// the two runs.
func TestFoldEnginesAgree(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		workload := func(opts ...quicksand.Option) []balances {
			c, d := h.newCluster(t, opts...)
			defer c.Close()
			ctx := context.Background()
			for i := 0; i < 60; i++ {
				op := quicksand.NewOp("deposit", fmt.Sprintf("acct-%d", i%5), int64(10+i))
				op.ID = quicksand.OpID(fmt.Sprintf("wk-%03d", i)) // same ops in both runs
				if _, err := c.Submit(ctx, i%c.Replicas(), op); err != nil {
					t.Fatal(err)
				}
				if i%7 == 0 {
					c.GossipRound()
					d.settle()
				}
			}
			d.converge(t, c)
			return c.States()
		}
		checkpointed := workload()
		baseline := workload(quicksand.WithFullRefold())
		for i := range checkpointed {
			if len(checkpointed[i]) != len(baseline[i]) {
				t.Fatalf("replica %d: %v vs %v", i, checkpointed[i], baseline[i])
			}
			for acct, bal := range baseline[i] {
				if checkpointed[i][acct] != bal {
					t.Fatalf("replica %d diverged on %s: checkpointed %d, full refold %d",
						i, acct, checkpointed[i][acct], bal)
				}
			}
		}
	})
}
