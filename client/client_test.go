package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitRetriesAreIdempotent: the SDK assigns the op ID before the
// first attempt, so when a 500 forces a retry, the daemon sees the SAME
// op twice — which the engine dedupes — never two different ops.
func TestSubmitRetriesAreIdempotent(t *testing.T) {
	var calls atomic.Int32
	var seen []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad body: %v", err)
		}
		seen = append(seen, req.ID)
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(ErrorEnvelope{Error: Error{Code: "internal", Message: "transient"}})
			return
		}
		json.NewEncoder(w).Encode(Result{Accepted: true, ID: req.ID})
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(2))
	res, err := c.Submit(context.Background(), Op{Kind: "deposit", Key: "k", Arg: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("not accepted: %+v", res)
	}
	if len(seen) != 2 || seen[0] == "" || seen[0] != seen[1] {
		t.Fatalf("retry changed the op identity: %v", seen)
	}
	if res.ID != seen[0] {
		t.Fatalf("result ID %q != submitted ID %q", res.ID, seen[0])
	}
}

// TestClientDoesNotRetry4xx: a decline-class status is the daemon's
// answer, not a transient fault.
func TestClientDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ErrorEnvelope{Error: Error{Code: "bad_request", Message: "nope"}})
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(3))
	_, err := c.Submit(context.Background(), Op{Kind: "deposit", Key: "k", Arg: 1}, false)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Code != "bad_request" {
		t.Fatalf("want bad_request APIError, got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("client retried a 4xx %d times", n-1)
	}
}

// TestBareHostPortGetsScheme: ops tooling passes bare host:port.
func TestBareHostPortGetsScheme(t *testing.T) {
	if c := New("127.0.0.1:8080"); c.base != "http://127.0.0.1:8080" {
		t.Fatalf("base = %q", c.base)
	}
	if c := New("https://d0.example/"); c.base != "https://d0.example" {
		t.Fatalf("base = %q", c.base)
	}
}

// TestBearerTokenHeader: the token rides as Authorization: Bearer.
func TestBearerTokenHeader(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("Authorization"); got != "Bearer hunter2" {
			t.Errorf("Authorization = %q", got)
		}
		json.NewEncoder(w).Encode(StateResponse{Keys: map[string]int64{}})
	}))
	defer srv.Close()
	c := New(srv.URL, WithToken("hunter2"))
	if _, err := c.State(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestClientRetries429WithRetryAfter: a 429 (the daemon shedding load)
// is retryable, and the server's Retry-After hint reaches the APIError
// so both the SDK's own loop and caller-managed loops can honor it.
func TestClientRetries429WithRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ErrorEnvelope{Error: Error{Code: "overloaded", Message: "ring full"}})
			return
		}
		json.NewEncoder(w).Encode(Result{Accepted: true, ID: "x"})
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(2))
	start := time.Now()
	res, err := c.Submit(context.Background(), Op{Kind: "deposit", Key: "k", Arg: 1}, false)
	if err != nil || !res.Accepted {
		t.Fatalf("submit after 429: %+v, %v", res, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("expected exactly one retry, saw %d calls", n)
	}
	// The retry waited out the server's hint, not just the 50ms backoff.
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry after %v ignored Retry-After: 1", elapsed)
	}
}

// TestRetryDelayJitters: backoff delays are spread over [base/2, base]
// so a fleet bounced together does not retry together, and a server
// Retry-After floors the wait.
func TestRetryDelayJitters(t *testing.T) {
	c := New("127.0.0.1:1")
	base := c.backoff << 1 // attempt 2
	distinct := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		d := c.retryDelay(2, nil)
		if d < base/2 || d > base {
			t.Fatalf("retryDelay = %v, want within [%v, %v]", d, base/2, base)
		}
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Fatal("50 samples produced one delay; jitter is not jittering")
	}
	ae := &APIError{Status: 503, Code: "degraded", RetryAfter: 42 * time.Second}
	if d := c.retryDelay(1, ae); d != 42*time.Second {
		t.Fatalf("Retry-After floor ignored: %v", d)
	}
}
