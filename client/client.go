package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to one quicksandd daemon. It is safe for concurrent use.
type Client struct {
	base    string
	token   string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithToken sets the bearer token sent on /v1 requests.
func WithToken(token string) Option { return func(c *Client) { c.token = token } }

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a failed request is retried (default
// 3). Submits are safe to retry: the SDK assigns every op an ID before
// the first attempt, so a retry that lands twice is deduplicated by the
// replica.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// New builds a client for the daemon at base, e.g.
// "http://127.0.0.1:8080". A bare host:port gets the http scheme.
func New(base string, opts ...Option) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Timeout: 10 * time.Second},
		retries: 3,
		backoff: 50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// newOpID mints a client-side idempotency key.
func newOpID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("client: crypto/rand unavailable: " + err.Error())
	}
	return "cli-" + hex.EncodeToString(b[:])
}

// APIError is a non-2xx response decoded from the daemon's error
// envelope.
type APIError struct {
	Status  int    // HTTP status
	Code    string // stable slug from the envelope
	Message string
	// RetryAfter is the server's Retry-After hint (0 when absent). The
	// SDK already honors it between its own retries; callers that manage
	// their own retry loop should too.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("quicksandd: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// retryable reports whether err (or an API error status) is worth
// retrying: transport failures, 5xx, and 429 (the daemon shedding load)
// yes, other 4xx no.
func retryable(err error) bool {
	var ae *APIError
	if ok := asAPIError(err, &ae); ok {
		return ae.Status >= 500 || ae.Status == http.StatusTooManyRequests
	}
	return true
}

func asAPIError(err error, out **APIError) bool {
	ae, ok := err.(*APIError)
	if ok {
		*out = ae
	}
	return ok
}

// do runs one JSON request with retries. Idempotency is the caller's
// contract: every retried body must carry the same op IDs.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.retryDelay(attempt, lastErr)):
			}
		}
		lastErr = c.once(ctx, method, path, body, out)
		if lastErr == nil || !retryable(lastErr) {
			return lastErr
		}
	}
	return lastErr
}

// retryDelay is the wait before retry attempt n: exponential backoff
// with full-range jitter (uniform in [base/2, base], so a fleet of
// clients bounced by the same degraded shard does not retry in
// lockstep), floored by the server's Retry-After hint when the previous
// response carried one — the daemon knows when its disk might heal
// better than our backoff curve does.
func (c *Client) retryDelay(attempt int, lastErr error) time.Duration {
	base := c.backoff << (attempt - 1)
	wait := base/2 + jitter(base/2)
	var ae *APIError
	if asAPIError(lastErr, &ae) && ae.RetryAfter > wait {
		wait = ae.RetryAfter
	}
	return wait
}

// jitter returns a uniform random duration in [0, max].
func jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return max / 2
	}
	return time.Duration(binary.LittleEndian.Uint64(b[:]) % uint64(max+1))
}

func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		ra := parseRetryAfter(resp.Header.Get("Retry-After"))
		var env ErrorEnvelope
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			return &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message, RetryAfter: ra}
		}
		return &APIError{Status: resp.StatusCode, Code: "internal", Message: strings.TrimSpace(string(data)), RetryAfter: ra}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// parseRetryAfter parses a Retry-After header's delay-seconds form
// (the only form the daemon emits); anything else yields 0.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Submit offers one operation. A missing op ID is filled in before the
// first attempt, so transport-level retries cannot double-apply the
// business. Accepted=false with a Reason is a decline, not an error.
func (c *Client) Submit(ctx context.Context, op Op, sync bool) (Result, error) {
	if op.ID == "" {
		op.ID = newOpID()
	}
	var res Result
	err := c.do(ctx, http.MethodPost, "/v1/submit", SubmitRequest{Op: op, Sync: sync}, &res)
	return res, err
}

// SubmitBatch offers many operations in one request; results come back
// in op order. IDs are assigned client-side exactly as in Submit.
func (c *Client) SubmitBatch(ctx context.Context, ops []Op, sync bool) ([]Result, error) {
	withIDs := make([]Op, len(ops))
	for i, op := range ops {
		if op.ID == "" {
			op.ID = newOpID()
		}
		withIDs[i] = op
	}
	var res BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/batch", BatchRequest{Ops: withIDs, Sync: sync}, &res)
	return res.Results, err
}

// State fetches the daemon's locally derived state — a well-informed
// guess, per the paper, not a global truth.
func (c *Client) State(ctx context.Context) (StateResponse, error) {
	var res StateResponse
	err := c.do(ctx, http.MethodGet, "/v1/state", nil, &res)
	return res, err
}

// Apologies fetches the daemon's apology queue.
func (c *Client) Apologies(ctx context.Context) (ApologiesResponse, error) {
	var res ApologiesResponse
	err := c.do(ctx, http.MethodGet, "/v1/apologies", nil, &res)
	return res, err
}

// Gossip asks the daemon to run one anti-entropy round immediately,
// instead of waiting for its timer — useful when watching two daemons
// catch up, and for tests that drive convergence deterministically.
func (c *Client) Gossip(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/gossip", nil, nil)
}

// Trace fetches a sampled op's recorded lifecycle timeline. A 404
// means the op was not sampled (or has been evicted), not that it
// never ran.
func (c *Client) Trace(ctx context.Context, opID string) (TraceResponse, error) {
	var res TraceResponse
	err := c.do(ctx, http.MethodGet, "/v1/trace?op="+url.QueryEscape(opID), nil, &res)
	return res, err
}

// TraceRecent fetches the daemon's recent trace-event ring — sampled
// lifecycle steps plus annotations, oldest first.
func (c *Client) TraceRecent(ctx context.Context) (TraceResponse, error) {
	var res TraceResponse
	err := c.do(ctx, http.MethodGet, "/v1/trace", nil, &res)
	return res, err
}

// Annotate stamps an out-of-band marker onto the daemon's trace
// stream. Load drivers use it to mark scenario phases.
func (c *Client) Annotate(ctx context.Context, note string) error {
	return c.do(ctx, http.MethodPost, "/v1/annotate", AnnotateRequest{Note: note}, nil)
}

// Health probes /healthz (no auth required).
func (c *Client) Health(ctx context.Context) (Health, error) {
	var res Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &res)
	return res, err
}
