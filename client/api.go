// Package client is the Go SDK for a quicksandd daemon's versioned HTTP
// API (/v1). It also defines the API's wire types — the daemon imports
// them from here, so the two cannot drift.
//
// The API speaks the engine's vocabulary: a submit is a guess admitted
// against local knowledge (or a coordinated commit when Sync is set),
// the response says whether the business was accepted, and /v1/apologies
// is the queue of guesses the cluster has since come to regret.
package client

// Op is one business operation submitted over the HTTP API.
type Op struct {
	// Kind names the business operation ("deposit", "withdraw", ...).
	Kind string `json:"kind"`
	// Key is the object the operation targets (an account, a SKU, ...).
	Key string `json:"key"`
	// Arg is the numeric argument, e.g. an amount in cents.
	Arg int64 `json:"arg"`
	// ID, when set by the caller, makes retries idempotent: an op whose
	// ID a replica has already recorded is accepted without re-recording.
	// The SDK assigns one automatically before the first attempt.
	ID string `json:"id,omitempty"`
	// Note is a free-form annotation carried with the op.
	Note string `json:"note,omitempty"`
}

// SubmitRequest is the body of POST /v1/submit.
type SubmitRequest struct {
	Op
	// Sync requests classic coordination (§5.8): every replica must
	// admit the op before it is accepted. Default is the eventually
	// consistent path — accept locally, gossip later.
	Sync bool `json:"sync,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Ops  []Op `json:"ops"`
	Sync bool `json:"sync,omitempty"`
}

// Result is the outcome of one submitted operation.
type Result struct {
	// Accepted reports whether the business was taken. False is a
	// decline (see Reason), not a transport error.
	Accepted bool `json:"accepted"`
	// Reason explains a decline ("declined by rule no-overdraft", ...).
	Reason string `json:"reason,omitempty"`
	// Retryable marks a decline as transient — the shard was degraded
	// (read-only while its disk heals) rather than the business being
	// refused. Resubmitting the same op (same ID) later may succeed.
	Retryable bool `json:"retryable,omitempty"`
	// Sync reports whether the op was coordinated across replicas.
	Sync bool `json:"sync,omitempty"`
	// ID is the operation's identity — the caller's, or the one the
	// ingress replica assigned. Resubmitting with the same ID is a no-op.
	ID string `json:"id"`
	// Lamport is the ingress Lamport stamp of an accepted op.
	Lamport uint64 `json:"lamport,omitempty"`
	// LatencyNS is the daemon-observed submit latency in nanoseconds.
	LatencyNS int64 `json:"latency_ns,omitempty"`
}

// BatchResponse is the body answering POST /v1/batch, results in op
// order.
type BatchResponse struct {
	Results []Result `json:"results"`
}

// StateResponse is the body answering GET /v1/state: the daemon's local
// replica's current derived state (a guess, not a global truth).
type StateResponse struct {
	// Node is the replica index this daemon hosts.
	Node int `json:"node"`
	// Shards is the cluster's shard count; Keys merges all of them.
	Shards int `json:"shards"`
	// Keys maps every known key to its locally derived value.
	Keys map[string]int64 `json:"keys"`
}

// Apology mirrors the engine's apology record (§5.7).
type Apology struct {
	ID      string `json:"id"`
	Rule    string `json:"rule"`
	Detail  string `json:"detail"`
	Key     string `json:"key,omitempty"`
	Amount  int64  `json:"amount,omitempty"`
	Replica string `json:"replica"`
}

// ApologiesResponse is the body answering GET /v1/apologies.
type ApologiesResponse struct {
	Total     int       `json:"total"`
	Automated []Apology `json:"automated"`
	Human     []Apology `json:"human"`
}

// Health is the body answering GET /healthz (unauthenticated).
type Health struct {
	// OK is true while every locally hosted shard replica can take
	// writes. It is false while any shard is degraded — the node still
	// serves reads (and the other shards' writes), so OK=false means
	// "investigate", not "dead".
	OK       bool   `json:"ok"`
	Node     int    `json:"node"`
	Shards   int    `json:"shards"`
	Replicas int    `json:"replicas"`
	PeerAddr string `json:"peer_addr,omitempty"`
	// Degraded lists each degraded shard as "shard N: replica: reason".
	// Empty on a healthy node.
	Degraded []string `json:"degraded,omitempty"`
}

// TraceEvent is one recorded op-lifecycle step, mirroring the engine's
// trace.Event wire shape.
type TraceEvent struct {
	Seq     uint64 `json:"seq"`
	AtNS    int64  `json:"at_ns"`
	Kind    string `json:"kind"` // submitted, admitted, declined, fsynced, gossiped, absorbed, folded, truth, apologized, annotation
	Op      string `json:"op,omitempty"`
	Key     string `json:"key,omitempty"`
	Replica string `json:"replica,omitempty"`
	Peer    string `json:"peer,omitempty"`
	Note    string `json:"note,omitempty"`
}

// TraceResponse is the body answering GET /v1/trace. With ?op=ID it is
// that sampled op's full timeline; without, the recent event ring.
type TraceResponse struct {
	// Op echoes the requested op ID ("" for the recent-ring form).
	Op string `json:"op,omitempty"`
	// SampleEvery is the daemon's 1-in-N tracing rate (0 = tracing off).
	SampleEvery int `json:"sample_every"`
	// Events are the recorded steps, oldest first.
	Events []TraceEvent `json:"events"`
}

// AnnotateRequest is the body of POST /v1/annotate: an out-of-band
// marker ("partition opened", "load phase 2") stamped onto the trace
// stream so operators can line op lifecycles up with what the world
// was doing.
type AnnotateRequest struct {
	Note string `json:"note"`
}

// Error is the uniform error envelope: every non-2xx /v1 response
// carries one.
type Error struct {
	// Code is a stable machine-readable slug: "unauthorized",
	// "bad_request", "not_found", "unavailable", "internal",
	// "degraded" (503: the target shard is read-only while its disk
	// heals; retry after the Retry-After interval), "overloaded" (429:
	// the ingest ring is saturated; back off and retry).
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
}

// ErrorEnvelope wraps Error in the response body.
type ErrorEnvelope struct {
	Error Error `json:"error"`
}
