// Package quicksand is a from-scratch Go reproduction of Pat Helland and
// Dave Campbell's "Building on Quicksand" (CIDR 2009).
//
// The paper is a vision piece: it argues that as the unit of failure grows
// from a mirrored disk to a datacenter, synchronous checkpointing becomes
// unaffordable, applications must accept asynchronous state capture, and
// correctness must move up from READ/WRITE storage semantics to
// commutative, associative, idempotent business operations — ACID 2.0 —
// with probabilistic business rules and apologies for the cases where
// guesses go wrong.
//
// This module builds every system the paper describes and measures every
// claim it makes:
//
//   - internal/sim, simnet, failure: a deterministic discrete-event world
//     with fail-fast nodes, latency, partitions, and fault injection.
//   - internal/tandem: the Tandem NonStop of 1984 (per-WRITE synchronous
//     checkpoints) and 1986 (log-based checkpoints, group commit), §3.
//   - internal/logship: asynchronous cross-datacenter log shipping with
//     takeover loss windows and orphan recovery, §4–5.
//   - internal/dynamo + internal/cart: a sloppy-quorum replicated blob
//     store with vector-clock siblings, and the operation-centric shopping
//     cart reconciled over it, §6.1.
//   - internal/core + internal/bank + internal/policy + internal/apology:
//     the paper's main contribution as a library — ACID 2.0 replication
//     with probabilistic rules, risk policies, and the memories/guesses/
//     apologies ledger, §5–6, §8.
//   - internal/escrow, resource, seats, twopc: escrow locking, the
//     over-provision/over-book spectrum, the seat-reservation pattern, and
//     the fragile 2PC baseline, §5.3, §7, §2.3.
//
// The paper's main contribution — the ACID 2.0 replication engine — is
// exported directly from this package: build a Cluster with New and
// functional options (WithReplicas, WithShards, WithSim,
// WithGossipEvery, ...), submit typed Ops synchronously with
// Submit(ctx, ...) or in bulk with SubmitBatch, and pick risk per
// operation with WithPolicy. WithShards partitions the key space across
// independent replica groups — §6's scale-out move — and
// WithDurability puts a disk under every replica (internal/store: a
// CRC-checked segmented journal plus atomic snapshots, group-commit
// fsyncs per §3.2's city-bus economics), enabling the hard-crash
// lifecycle: Kill drops a replica's RAM, Recover rebuilds it from disk
// and rejoins gossip, and New cold-starts from an earlier
// incarnation's directory. The Transport seam runs the same cluster
// code on the deterministic simulator (SimTransport) for experiments
// or on real goroutines (LiveTransport) for wall-clock benchmarks. See
// examples/quickstart and examples/banking for end-to-end use.
//
// The derived evaluation lives in internal/experiment (19 experiments,
// each pinned to a quoted claim); run it with cmd/quicksand-bench or
// `go test -bench=.` at the module root. See DESIGN.md for the system
// inventory and README.md for the public API tour.
package quicksand

// Version identifies this reproduction. 2.x is the public API: typed
// ops, context-aware submits, functional options, pluggable transports;
// 2.1 adds the durable storage engine (WithDurability, Kill/Recover)
// and removes the deprecated SubmitOp shim.
const Version = "2.1.0"
