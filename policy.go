package quicksand

// Risk policies, re-exported from internal/policy: the paper's §5.5
// "stomach for risk" knob, choosing per operation between asynchronous
// guessing and synchronous coordination (§5.8: synchronous checkpoints OR
// apologies).

import "repro/internal/policy"

type (
	// Policy decides the risk path for each operation.
	Policy = policy.Policy
	// PolicyFunc adapts a plain function to a Policy.
	PolicyFunc = policy.Func
	// Decision is the risk verdict for one operation.
	Decision = policy.Decision
)

// The two paths of §5.8.
const (
	// Async accepts the operation on local knowledge: low latency, a
	// guess that may later need an apology.
	Async = policy.Async
	// Sync coordinates with every replica before accepting: high latency,
	// no apology risk for this operation.
	Sync = policy.Sync
)

// AlwaysAsync guesses on everything — maximum availability, maximum
// apology exposure.
func AlwaysAsync() Policy { return policy.AlwaysAsync() }

// AlwaysSync coordinates everything — the classic consistency choice.
func AlwaysSync() Policy { return policy.AlwaysSync() }

// Threshold coordinates operations whose Arg (e.g. cents at stake) is at
// or above limit and guesses below it — the $10,000-check rule verbatim.
func Threshold(limit int64) Policy { return policy.Threshold(limit) }

// ByKind routes listed operation kinds to Sync and everything else to
// Async.
func ByKind(syncKinds ...string) Policy { return policy.ByKind(syncKinds...) }
