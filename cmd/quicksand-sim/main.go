// Command quicksand-sim runs one of the paper's systems with parameters
// from the command line, for interactive exploration beyond the canned
// experiment suite.
//
// Scenarios:
//
//	quicksand-sim -scenario tandem  -mode dp2 -txns 500 -writes 4 -crashevery 25
//	quicksand-sim -scenario logship -wan 20ms -ship 100ms -commits 500 [-sync]
//	quicksand-sim -scenario bank    -replicas 3 -gossip 50ms -checks 400 -threshold 1000000
//	quicksand-sim -scenario cart    -sessions 8 -adds 6 [-churn] [-statemerge]
//
// Every run is deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	quicksand "repro"
	"repro/internal/bank"
	"repro/internal/cart"
	"repro/internal/dynamo"
	"repro/internal/logship"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tandem"
	"repro/internal/workload"
)

var (
	scenario = flag.String("scenario", "", "tandem | logship | bank | cart")
	seed     = flag.Int64("seed", 1, "deterministic seed")

	// tandem
	mode       = flag.String("mode", "dp2", "dp1 | dp2")
	txns       = flag.Int("txns", 500, "transactions to run")
	writes     = flag.Int("writes", 4, "writes per transaction")
	crashEvery = flag.Int("crashevery", 0, "crash a primary every N txns (0 = never)")

	// logship
	wan     = flag.Duration("wan", 20*time.Millisecond, "one-way WAN latency")
	ship    = flag.Duration("ship", 100*time.Millisecond, "log shipping interval")
	commits = flag.Int("commits", 500, "commits to run")
	syncRep = flag.Bool("sync", false, "synchronous (transparent) replication")

	// bank
	replicas  = flag.Int("replicas", 3, "bank replicas")
	gossip    = flag.Duration("gossip", 50*time.Millisecond, "gossip interval")
	checks    = flag.Int("checks", 400, "checks to clear")
	accounts  = flag.Int("accounts", 20, "accounts")
	opening   = flag.Int64("opening", 100_00, "opening balance per account, cents")
	fee       = flag.Int64("fee", 30_00, "overdraft fee, cents")
	threshold = flag.Int64("threshold", math.MaxInt64, "sync-coordination threshold, cents (default: never)")

	// cart
	sessions   = flag.Int("sessions", 8, "concurrent shopping sessions")
	adds       = flag.Int("adds", 6, "adds per session")
	churn      = flag.Bool("churn", false, "bounce storage nodes mid-run")
	statemerge = flag.Bool("statemerge", false, "use the §6.4 state-merge strawman")
)

func main() {
	flag.Parse()
	switch *scenario {
	case "tandem":
		runTandem()
	case "logship":
		runLogship()
	case "bank":
		runBank()
	case "cart":
		runCart()
	default:
		fmt.Fprintln(os.Stderr, "usage: quicksand-sim -scenario tandem|logship|bank|cart [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

func runTandem() {
	m := tandem.DP2
	if *mode == "dp1" {
		m = tandem.DP1
	}
	s := sim.New(*seed)
	sys := tandem.New(s, tandem.Config{Mode: m, NumDP: 4})
	committed := 0
	var launch func(i int)
	launch = func(i int) {
		if i == *txns {
			return
		}
		t := sys.Begin()
		var step func(w int)
		step = func(w int) {
			if w == *writes {
				t.Commit(func(ok bool) {
					if ok {
						committed++
					}
					launch(i + 1)
				})
				return
			}
			t.Write(fmt.Sprintf("k-%d-%d", i, w), "v", func(ok bool) {
				if !ok {
					t.Abort()
					launch(i + 1)
					return
				}
				step(w + 1)
			})
		}
		step(0)
		if *crashEvery > 0 && i%*crashEvery == *crashEvery/2 {
			pair := (i / *crashEvery) % 4
			s.After(0, func() { sys.CrashPrimary(pair) })
			s.After(30*time.Millisecond, func() { sys.RestartBackup(pair) })
		}
	}
	launch(0)
	s.Run()
	fmt.Printf("tandem %s: %d/%d committed in %v virtual time\n", m, committed, *txns, time.Duration(s.Now()))
	fmt.Printf("  write p50/p99: %v / %v\n", sys.M.WriteLat.QuantileDur(0.5), sys.M.WriteLat.QuantileDur(0.99))
	fmt.Printf("  txn mean: %v   commits/virtual-sec: %.0f\n",
		sys.M.TxnLat.MeanDur(), float64(committed)/time.Duration(s.Now()).Seconds())
	fmt.Printf("  checkpoints: %d total, %d per-write   failover aborts: %d\n",
		sys.M.CheckpointMsgs.Value(), sys.M.WriteCkptMsgs.Value(), sys.M.FailoverAborts.Value())
}

func runLogship() {
	s := sim.New(*seed)
	sys := logship.New(s, logship.Config{Sync: *syncRep, WANLatency: *wan, ShipInterval: *ship})
	acked := 0
	workload.PoissonLoop(s, 2*time.Millisecond, *commits, func(i int) {
		sys.Commit(fmt.Sprintf("k%06d", i), "v", func(ok bool) {
			if ok {
				acked++
			}
		})
	})
	s.Run()
	fmt.Printf("logship (sync=%v wan=%v ship=%v): %d/%d acked\n", *syncRep, *wan, *ship, acked, *commits)
	fmt.Printf("  commit p50/p99: %s / %s\n",
		stats.Dur(sys.M.CommitLat.P50()), stats.Dur(sys.M.CommitLat.P99()))
	fmt.Printf("  backup lag at quiesce: %d txns\n", sys.BackupLagTxns())
	fmt.Println("  (crash the primary mid-run via the logship package API to see the loss window — experiment E4)")
}

func runBank() {
	if *replicas < 1 {
		fmt.Fprintln(os.Stderr, "bank: -replicas must be at least 1")
		os.Exit(2)
	}
	s := sim.New(*seed)
	b := bank.New(*fee, quicksand.WithSim(s), quicksand.WithReplicas(*replicas))
	for a := 0; a < *accounts; a++ {
		b.Deposit(0, fmt.Sprintf("acct-%04d", a), *opening, nil)
	}
	s.Run()
	for i := 0; i < *replicas+2; i++ {
		b.C.GossipRound()
		s.Run()
	}
	r := s.Rand()
	keys := workload.UniformKeys(r, "acct", *accounts)
	amounts := workload.LogNormalCents(r, math.Log(float64(*opening)/3), 0.8)
	pol := policy.Threshold(*threshold)
	cleared, declined := 0, 0
	stop := b.C.StartGossip(*gossip)
	horizon := workload.PoissonLoop(s, 5*time.Millisecond, *checks, func(i int) {
		b.ClearCheck(i%*replicas, keys(), i+1000, amounts(), pol, func(res quicksand.Result) {
			if res.Accepted {
				cleared++
			} else {
				declined++
			}
		})
	})
	s.RunUntil(sim.Time(horizon) + sim.Time(time.Second))
	stop()
	s.Run()
	for i := 0; i < *replicas+2 && !b.C.Converged(); i++ {
		b.C.GossipRound()
		s.Run()
	}
	fmt.Printf("bank (%d replicas, gossip %v, sync threshold %d¢):\n", *replicas, *gossip, *threshold)
	fmt.Printf("  cleared %d, declined %d, bounce fees %d (%s of cleared)\n",
		cleared, declined, b.Bounced.Value(), stats.Pct(stats.Ratio(b.Bounced.Value(), int64(cleared))))
	fmt.Printf("  converged: %v   %s\n", b.C.Converged(), b.C.Apologies)
}

func runCart() {
	s := sim.New(*seed)
	cl := dynamo.New(s, dynamo.Config{Nodes: 5, N: 3, R: 2, W: 2})
	type shopper interface {
		Add(sku string, qty int64, done func(bool))
		Contents(done func([]cart.Item, bool))
	}
	ackedAdds := 0
	for i := 0; i < *sessions; i++ {
		i := i
		var ss shopper
		if *statemerge {
			ss = cart.NewStateMergeSession(cl, "cart", fmt.Sprintf("shopper-%d", i))
		} else {
			ss = cart.NewSession(cl, "cart", fmt.Sprintf("shopper-%d", i))
		}
		workload.PoissonLoop(s, 3*time.Millisecond, *adds, func(step int) {
			ss.Add(fmt.Sprintf("sku-%d-%d", i, step), 1, func(ok bool) {
				if ok {
					ackedAdds++
				}
			})
		})
	}
	if *churn {
		s.At(sim.Time(10*time.Millisecond), func() { cl.SetUp("n1", false) })
		s.At(sim.Time(30*time.Millisecond), func() { cl.SetUp("n1", true) })
	}
	s.Run()
	for i := 0; i < 4; i++ {
		cl.AntiEntropyRound()
		s.Run()
	}
	var reader shopper
	if *statemerge {
		reader = cart.NewStateMergeSession(cl, "cart", "auditor")
	} else {
		reader = cart.NewSession(cl, "cart", "auditor")
	}
	var final []cart.Item
	reader.Contents(func(items []cart.Item, ok bool) { final = items })
	s.Run()
	design := "operation-centric"
	if *statemerge {
		design = "state-merge strawman"
	}
	fmt.Printf("cart (%s, %d sessions × %d adds, churn=%v):\n", design, *sessions, *adds, *churn)
	fmt.Printf("  acked adds: %d   items in final cart: %d   lost: %d\n",
		ackedAdds, len(final), ackedAdds-len(final))
	m := &cl.M
	fmt.Printf("  store: %d sibling GETs, %d read repairs, %d hinted writes\n",
		m.SiblingGets.Value(), m.ReadRepairs.Value(), m.HintedWrites.Value())
}
