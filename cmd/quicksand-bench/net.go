package main

// The -net mode: wall-clock throughput of the full networked stack —
// client SDK → HTTP API → daemon → engine, with anti-entropy between
// two daemons crossing real loopback TCP. Where -live isolates the
// engine, -net prices the whole deployment: JSON envelopes, bearer
// auth, socket hops, and gossip frames included. Latencies here are
// client-observed round trips, not engine-internal submit times.

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/daemon"
	"repro/internal/stats"
)

// netFreePorts reserves n loopback ports by binding and releasing them.
func netFreePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

func runNetBench(duration time.Duration, report *benchReport) error {
	workers := 2 * runtime.NumCPU() // HTTP round trips wait more than they compute
	fmt.Println("\nNET: client SDK → HTTP → daemon → TCP gossip, two daemons on loopback (wall clock, this machine)")
	tab := stats.NewTable(
		fmt.Sprintf("net — SDK submits against daemon A for %v per row, %d workers, 2 daemons gossiping every 1ms over TCP", duration, workers),
		"Every worker loops the Go SDK against daemon A's /v1 API over 256 keys while daemon B receives the stream through anti-entropy frames on a second process's worth of stack (same process here, full sockets in between). submit posts one op per request; batch=256 posts 256 per request. Latency is the client-observed round trip. converged reports whether both daemons' /v1/state maps matched after quiesce.",
		"arm", "accepted", "ops/sec", "allocs/op", "rtt p50", "rtt p99", "converged after quiesce")

	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}

	for _, arm := range []struct {
		label string
		batch int // ops per request; 0 = single-op submits
	}{
		{"net submit", 0},
		{"net batch=256", 256},
	} {
		res, err := runNetArm(arm.label, arm.batch, duration, workers, keys, tab)
		if err != nil {
			return err
		}
		res.Table = "net"
		report.add(res)
	}
	fmt.Print(tab.String())
	return nil
}

// runNetArm boots a fresh two-daemon loopback cluster, drives it through
// the SDK for the window, checks cross-daemon convergence, and tears it
// down.
func runNetArm(label string, batch int, duration time.Duration, workers int, keys []string, tab *stats.Table) (benchResult, error) {
	ports, err := netFreePorts(2)
	if err != nil {
		return benchResult{}, err
	}
	peers := map[int]string{0: ports[0], 1: ports[1]}
	daemons := make([]*daemon.Daemon, 2)
	for i := range daemons {
		d, err := daemon.New(daemon.Config{
			Node:        i,
			Replicas:    2,
			HTTPListen:  "127.0.0.1:0",
			PeerListen:  ports[i],
			Peers:       peers,
			GossipEvery: time.Millisecond,
		})
		if err != nil {
			return benchResult{}, err
		}
		defer d.Close()
		daemons[i] = d
	}
	ca := client.New("http://" + daemons[0].HTTPAddr())
	cb := client.New("http://" + daemons[1].HTTPAddr())

	var total atomic.Int64
	var lat stats.Histogram
	var latMu sync.Mutex
	var wg sync.WaitGroup
	m0 := mallocs()
	stop := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			ops := make([]client.Op, max(batch, 1))
			for i := w * 7919; time.Now().Before(stop); {
				for j := range ops {
					ops[j] = client.Op{Kind: "deposit", Key: keys[i%len(keys)], Arg: 1}
					i++
				}
				t0 := time.Now()
				var accepted int64
				if batch > 0 {
					results, err := ca.SubmitBatch(ctx, ops, false)
					if err != nil {
						return
					}
					for _, r := range results {
						if r.Accepted {
							accepted++
						}
					}
				} else {
					r, err := ca.Submit(ctx, ops[0], false)
					if err != nil {
						return
					}
					if r.Accepted {
						accepted = 1
					}
				}
				rtt := time.Since(t0)
				latMu.Lock()
				lat.AddDur(rtt)
				latMu.Unlock()
				total.Add(accepted)
			}
		}(w)
	}
	wg.Wait()
	allocs := mallocs() - m0

	// Quiesce: background gossip spreads the tail; converged when the
	// two daemons' derived states agree through the public API.
	converged := false
	ctx := context.Background()
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		sa, errA := ca.State(ctx)
		sb, errB := cb.State(ctx)
		if errA == nil && errB == nil && reflect.DeepEqual(sa.Keys, sb.Keys) {
			converged = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	accepted := total.Load()
	res := benchResult{
		Arm:       label,
		Accepted:  accepted,
		OpsPerSec: float64(accepted) / duration.Seconds(),
		P50Ns:     lat.P50(),
		P99Ns:     lat.P99(),
		Converged: converged,
	}
	if accepted > 0 {
		res.NsPerOp = float64(duration.Nanoseconds()) / float64(accepted)
		res.AllocsPerOp = float64(allocs) / float64(accepted)
	}
	tab.AddRow(label, fmt.Sprint(accepted),
		fmt.Sprintf("%.0f", res.OpsPerSec),
		fmt.Sprintf("%.1f", res.AllocsPerOp),
		stats.Dur(res.P50Ns), stats.Dur(res.P99Ns),
		fmt.Sprint(res.Converged))
	return res, nil
}
