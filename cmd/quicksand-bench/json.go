package main

// Machine-readable benchmark output (-json FILE): every arm of the -live
// and -durable tables is also recorded as a benchResult, and the whole
// run — host fingerprint included, since live numbers measure this
// machine, not the protocol — is written as one JSON document. CI
// uploads it as an artifact and BENCH_live.json at the repository root
// pins the perf trajectory release by release.

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// benchResult is one measured arm.
type benchResult struct {
	Table       string  `json:"table"`                  // "live" or "live-durable"
	Arm         string  `json:"arm"`                    // row label, e.g. "shards=4" or "group-commit"
	Accepted    int64   `json:"accepted"`               // operations accepted during the window
	OpsPerSec   float64 `json:"ops_per_sec"`            // accepted / window
	NsPerOp     float64 `json:"ns_per_op"`              // window / accepted
	AllocsPerOp float64 `json:"allocs_per_op"`          // heap allocations per accepted op, whole process
	P50Ns       float64 `json:"p50_ns"`                 // submit latency median
	P99Ns       float64 `json:"p99_ns"`                 // submit latency tail
	Fsyncs      int64   `json:"fsyncs"`                 // disk flushes during the window (0 when volatile)
	FsyncsPerOp float64 `json:"fsyncs_per_op"`          // the group-commit amortization figure
	FsyncP50Ns  float64 `json:"fsync_p50_ns,omitempty"` // median single-fsync cost (durable arms)
	FsyncP99Ns  float64 `json:"fsync_p99_ns,omitempty"` // tail single-fsync cost (durable arms)
	MaxStallNs  int64   `json:"max_stall_ns,omitempty"` // worst single writer stall (write+fsync) anywhere
	Converged   bool    `json:"converged"`              // did gossip quiesce afterwards
	Window      string  `json:"window,omitempty"`       // sampling duration per arm
	GOMAXPROCS  int     `json:"gomaxprocs"`             // effective parallelism while THIS arm ran
}

// benchReport is the whole -json document.
type benchReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Window      string        `json:"window_per_arm"`
	Results     []benchResult `json:"results"`
}

func newBenchReport(window time.Duration) *benchReport {
	return &benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		// GOMAXPROCS can differ from NumCPU (cgroup limits, taskset,
		// GOMAXPROCS env); live numbers are a function of the effective
		// parallelism, so the fingerprint records both.
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Window:     window.String(),
	}
}

func (r *benchReport) add(res benchResult) {
	if r == nil {
		return
	}
	res.Window = r.Window
	if res.GOMAXPROCS == 0 {
		// Stamped at add time, immediately after the arm ran — NOT copied
		// from the report header. A matrix-style sweep changes GOMAXPROCS
		// between arms, so the startup fingerprint alone cannot describe a
		// row; every row records the parallelism it actually measured.
		res.GOMAXPROCS = runtime.GOMAXPROCS(0)
	}
	r.Results = append(r.Results, res)
}

// write appends this report to path: the file holds the perf trajectory
// as a JSON array of reports, newest last, so successive runs accumulate
// comparable points instead of overwriting each other. A pre-existing
// single-report file (the original format) becomes the array's first
// element.
func (r *benchReport) write(path string) error {
	var trajectory []*benchReport
	if buf, err := os.ReadFile(path); err == nil {
		if json.Unmarshal(buf, &trajectory) != nil {
			var old benchReport
			if json.Unmarshal(buf, &old) == nil && len(old.Results) > 0 {
				trajectory = []*benchReport{&old}
			}
		}
	}
	trajectory = append(trajectory, r)
	buf, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

// mallocs reads the process-wide cumulative heap allocation count; the
// delta across a sampling window divided by accepted ops is the
// allocs/op column. It includes gossip, stores, and GC-visible
// everything — deliberately: that is the figure a capacity planner sees.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}
