// Command quicksand-bench runs the full experiment suite — the derived
// evaluation section of the Building on Quicksand reproduction — and
// prints every table.
//
// Usage:
//
//	quicksand-bench              # run everything
//	quicksand-bench -run E6      # one experiment
//	quicksand-bench -list        # list experiments and claims
//	quicksand-bench -seed 7      # change the deterministic seed
//	quicksand-bench -live        # wall-clock engine throughput on real goroutines
//	quicksand-bench -shards 8    # shard count: the -live scaling curve's top end,
//	                             # and the sharded arm of E14 on the simulator
//	quicksand-bench -live -durable DIR
//	                             # add the durability arm: ops/sec, fsyncs, and
//	                             # group-commit amortization against real files in DIR
//	quicksand-bench -live -json FILE
//	                             # additionally write every measured arm (ops/s,
//	                             # ns/op, allocs/op, fsyncs/op) as JSON to FILE —
//	                             # the format BENCH_live.json and the CI artifact use
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
)

func main() {
	var (
		run     = flag.String("run", "", "run only the experiment with this ID (e.g. E6, A1)")
		list    = flag.Bool("list", false, "list experiments without running")
		seed    = flag.Int64("seed", 1, "deterministic seed for every experiment")
		live    = flag.Bool("live", false, "run only the live-transport throughput measurement (real goroutines, wall clock)")
		liveDur = flag.Duration("liveduration", 500*time.Millisecond, "sampling window per row of the -live table")
		shards  = flag.Int("shards", 4, "max shard count for the -live scaling curve, and the sharded arm of E14 in sim mode")
		durable = flag.String("durable", "", "with -live: directory for per-replica disk stores; adds the durability/group-commit table")
		netArm  = flag.Bool("net", false, "measure the networked stack: SDK → HTTP → daemon with TCP gossip between two loopback daemons")
		jsonOut = flag.String("json", "", "with -live/-net: also write machine-readable results (ops/s, ns/op, allocs/op, fsyncs/op per arm) to this file")
	)
	flag.Parse()

	experiment.SetShards(*shards)

	if *live || *netArm {
		report := newBenchReport(*liveDur)
		if *live {
			runLiveBench(*liveDur, *shards, report)
			if *durable != "" {
				runLiveDurableBench(*liveDur, *durable, report)
			}
		}
		if *netArm {
			if err := runNetBench(*liveDur, report); err != nil {
				fmt.Fprintln(os.Stderr, "net bench failed:", err)
				os.Exit(1)
			}
		}
		if *jsonOut != "" {
			if err := report.write(*jsonOut); err != nil {
				fmt.Fprintln(os.Stderr, "writing", *jsonOut, "failed:", err)
				os.Exit(1)
			}
			fmt.Printf("\nwrote %d results to %s\n", len(report.Results), *jsonOut)
		}
		return
	}

	exps := experiment.All()
	if *run != "" {
		e, err := experiment.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []experiment.Experiment{e}
	}

	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	for _, e := range exps {
		fmt.Printf("\n%s: %s\n", e.ID, e.Title)
		fmt.Printf("claim — %s\n\n", e.Claim)
		start := time.Now()
		tab := e.Run(*seed)
		fmt.Print(tab.String())
		fmt.Printf("(%s in %v wall time)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
