package main

// The -live mode: wall-clock throughput of the ACID 2.0 engine on the
// goroutine transport, swept across shard counts and across the two
// ingest paths (per-op dispatch and the batched single-writer pipeline).
// Unlike the experiment tables, these numbers are NOT deterministic —
// they measure this machine, not the protocol. With -json FILE every row
// is also recorded machine-readably.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	quicksand "repro"
	"repro/internal/stats"
)

// liveApp is a running sum per key: no folds beyond one Step per entry on
// the submit path, so the measurement isolates the engine and transport.
type liveApp struct{}

func (liveApp) Init() int64                         { return 0 }
func (liveApp) Step(s int64, op quicksand.Op) int64 { return s + op.Arg }

// admitAll forces every submit through admission — the rule-checked
// shape real applications have — so each op derives state under its
// shard-replica's lock and the table measures lock-domain scaling.
func admitAll() quicksand.Rule[int64] {
	return quicksand.Rule[int64]{
		Name:  "admit-all",
		Admit: func(int64, quicksand.Op) bool { return true },
	}
}

func runLiveBench(duration time.Duration, maxShards int, report *benchReport) {
	if maxShards < 1 {
		maxShards = 1
	}
	workers := runtime.NumCPU()
	fmt.Println("\nLIVE: engine throughput on the goroutine transport (wall clock, this machine, not deterministic)")
	tab := stats.NewTable(
		fmt.Sprintf("live — rule-checked submits for %v per row, %d workers, 3 replicas/shard, gossip every 1ms", duration, workers),
		"Every worker loops Submit(ctx, ...) at replica index 0 over 256 keys: unsharded, one replica mutex serializes them all; sharded, each shard's group folds and gossips only its own keys. The ingest=256 rows route the same stream through the batched single-writer pipeline (WithIngestBatch). The 1→N curve is the scaling sharding buys on this machine.",
		"arm", "accepted", "ops/sec", "allocs/op", "submit p50", "submit p99", "converged after quiesce")
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	var counts []int
	for s := 1; s < maxShards; s *= 2 {
		counts = append(counts, s)
	}
	counts = append(counts, maxShards)
	type liveArm struct {
		label string
		opts  []quicksand.Option
	}
	arms := make([]liveArm, 0, len(counts)+2)
	for _, shards := range counts {
		arms = append(arms, liveArm{fmt.Sprintf("shards=%d", shards),
			[]quicksand.Option{quicksand.WithShards(shards)}})
	}
	// The pipeline arms: same workload, batched single-writer ingest.
	arms = append(arms, liveArm{"shards=1 ingest=256", []quicksand.Option{quicksand.WithIngestBatch(256)}})
	if maxShards > 1 {
		arms = append(arms, liveArm{fmt.Sprintf("shards=%d ingest=256", maxShards),
			[]quicksand.Option{quicksand.WithShards(maxShards), quicksand.WithIngestBatch(256)}})
	}
	for _, arm := range arms {
		c := quicksand.New[int64](liveApp{}, []quicksand.Rule[int64]{admitAll()},
			append([]quicksand.Option{quicksand.WithGossipEvery(time.Millisecond)}, arm.opts...)...)
		res := runLiveRow(tab, c, arm.label, duration, workers, keys)
		res.Table = "live"
		report.add(res)
	}
	fmt.Print(tab.String())
}

// runLiveRow drives one cluster with the standard worker loop for the
// sampling window, quiesces it, closes it, and appends its row, also
// returning the measurement for machine-readable output.
func runLiveRow(tab *stats.Table, c *quicksand.Cluster[int64], label string, duration time.Duration, workers int, keys []string) benchResult {
	var total atomic.Int64
	var wg sync.WaitGroup
	m0 := mallocs()
	stop := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := w * 7919; time.Now().Before(stop); i++ {
				res, err := c.Submit(ctx, 0, quicksand.NewOp("op", keys[i%len(keys)], 1))
				if err == nil && res.Accepted {
					total.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	allocs := mallocs() - m0
	// Quiesce: let gossip spread the tail, then stop it.
	deadline := time.Now().Add(2 * time.Second)
	for !c.Converged() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	flush := flushTelemetry(c)
	c.Close()
	return liveRowResult(tab, c, label, duration, total.Load(), allocs, flush)
}

// flushStats is the per-arm flush-stall telemetry of a durable arm: how
// many fsyncs ran, what a single fsync cost at the median and the tail,
// and the worst stall the journal writer ever took on one flush.
type flushStats struct {
	fsyncs     int64
	p50, p99   float64
	maxStallNs int64
}

// flushTelemetry samples the cluster's durability counters and latency
// distributions; all zeros on volatile arms. Must run before Close.
func flushTelemetry(c *quicksand.Cluster[int64]) flushStats {
	st := c.DurabilityStats()
	fsync, _ := c.DurabilityLatencies()
	return flushStats{
		fsyncs:     st.Fsyncs,
		p50:        fsync.P50(),
		p99:        fsync.P99(),
		maxStallNs: st.MaxStallNs,
	}
}

// liveRowResult renders one measured arm into the table and the JSON
// result.
func liveRowResult(tab *stats.Table, c *quicksand.Cluster[int64], label string, duration time.Duration, accepted int64, allocs uint64, flush flushStats) benchResult {
	res := benchResult{
		Arm:        label,
		Accepted:   accepted,
		OpsPerSec:  float64(accepted) / duration.Seconds(),
		P50Ns:      c.M.AsyncLat.P50(),
		P99Ns:      c.M.AsyncLat.P99(),
		Fsyncs:     flush.fsyncs,
		FsyncP50Ns: flush.p50,
		FsyncP99Ns: flush.p99,
		MaxStallNs: flush.maxStallNs,
		Converged:  c.Converged(),
	}
	if accepted > 0 {
		res.NsPerOp = float64(duration.Nanoseconds()) / float64(accepted)
		res.AllocsPerOp = float64(allocs) / float64(accepted)
		res.FsyncsPerOp = float64(flush.fsyncs) / float64(accepted)
	}
	tab.AddRow(label, fmt.Sprint(accepted),
		fmt.Sprintf("%.0f", res.OpsPerSec),
		fmt.Sprintf("%.1f", res.AllocsPerOp),
		stats.Dur(res.P50Ns), stats.Dur(res.P99Ns),
		fmt.Sprint(res.Converged))
	return res
}

// runLiveDurableBench is the -durable arm: the same worker loop on an
// unsharded cluster, once per durability mode, against real files under
// dir. The ops/fsync column is the group-commit amortization — how many
// accepted operations shared each disk flush.
func runLiveDurableBench(duration time.Duration, dir string, report *benchReport) {
	// More workers than cores on purpose: riders must be waiting at the
	// stop for the bus to fill. Blocked submitters cost no CPU; each one
	// in flight during an fsync is an op that flush covers for free.
	workers := 4 * runtime.NumCPU()
	if workers < 8 {
		workers = 8
	}
	fmt.Println("\nLIVE DURABLE: fsync cost and group-commit amortization (wall clock, this machine)")
	tab := stats.NewTable(
		fmt.Sprintf("live durable — rule-checked submits for %v per row, %d workers, 3 replicas, gossip every 1ms, stores under %s", duration, workers, dir),
		"volatile keeps everything in RAM; group-commit fsyncs every accepted op but lets in-flight submits share flushes (§3.2's city bus, adaptive departure); the batch row ingests through SubmitBatch, where a whole batch boards one flush; the ingest rows add the single-writer pipeline, so the replica lock and journal append amortize too — the shards=4 ingest row runs one journal + flush loop per shard in parallel; fsync-per-op pays one flush per op — the car-per-driver baseline group commit was invented to beat. Accepted results are never acknowledged before they are durable in any disk mode. The last three columns are the flush-stall telemetry: what one fsync cost at the median and the tail, and the worst single stall the journal writer took.",
		"mode", "accepted", "ops/sec", "allocs/op", "submit p50", "submit p99", "converged after quiesce", "fsyncs", "ops/fsync", "fsync p50", "fsync p99", "max stall")
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	modes := []struct {
		name  string
		batch int // SubmitBatch size; 0 = single-op Submit loop
		opts  []quicksand.Option
	}{
		{"volatile", 0, nil},
		{"group-commit", 0, []quicksand.Option{quicksand.WithDurability(filepath.Join(dir, "group"))}},
		{"group-commit batch=256", 256, []quicksand.Option{quicksand.WithDurability(filepath.Join(dir, "group-batch"))}},
		{"group-commit ingest=256", 256, []quicksand.Option{
			quicksand.WithDurability(filepath.Join(dir, "group-ingest")), quicksand.WithIngestBatch(256)}},
		// The tail-latency acceptance arm: four parallel per-shard journals,
		// adaptive flush deadlines, delta snapshots, recycled segments. The
		// submit-side batch is deliberately small (32, not 256): p99 here is
		// bounded below by Little's law — in-flight ops / throughput — so a
		// row that queues 2048 ops can never show a low tail no matter how
		// fast the store is. 256 in flight keeps the pipeline's coalescing
		// window full (it batches across workers up to the ingest cap) while
		// leaving the tail to measure the journal, not the queue.
		{"group-commit ingest=256 shards=4", 32, []quicksand.Option{
			quicksand.WithDurability(filepath.Join(dir, "group-ingest-4")),
			quicksand.WithIngestBatch(256), quicksand.WithShards(4)}},
		{"fsync-per-op", 0, []quicksand.Option{quicksand.WithDurability(filepath.Join(dir, "everyop")), quicksand.WithFsyncEvery(-1)}},
	}
	for _, m := range modes {
		for _, sub := range []string{"group", "group-batch", "group-ingest", "group-ingest-4", "everyop"} {
			os.RemoveAll(filepath.Join(dir, sub))
		}
		c := quicksand.New[int64](liveApp{}, []quicksand.Rule[int64]{admitAll()},
			append([]quicksand.Option{quicksand.WithGossipEvery(time.Millisecond)}, m.opts...)...)
		var res benchResult
		if m.batch > 0 {
			res = runLiveBatchRow(tab, c, m.name, duration, workers, m.batch, keys)
		} else {
			res = runLiveRow(tab, c, m.name, duration, workers, keys)
		}
		res.Table = "live-durable"
		report.add(res)
		row := &tab.Rows[len(tab.Rows)-1]
		if res.Fsyncs > 0 {
			*row = append(*row, fmt.Sprint(res.Fsyncs), fmt.Sprintf("%.1f", float64(res.Accepted)/float64(res.Fsyncs)),
				stats.Dur(res.FsyncP50Ns), stats.Dur(res.FsyncP99Ns), stats.Dur(float64(res.MaxStallNs)))
		} else {
			*row = append(*row, "0", "-", "-", "-", "-")
		}
	}
	fmt.Print(tab.String())
}

// runLiveBatchRow is runLiveRow's bulk-ingest sibling: each worker loops
// SubmitBatch over mixed-key batches instead of single-op Submits.
func runLiveBatchRow(tab *stats.Table, c *quicksand.Cluster[int64], label string, duration time.Duration, workers, batchSize int, keys []string) benchResult {
	var total atomic.Int64
	var wg sync.WaitGroup
	m0 := mallocs()
	stop := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			batch := make([]quicksand.Op, batchSize)
			for i := w * 7919; time.Now().Before(stop); {
				for j := range batch {
					batch[j] = quicksand.NewOp("op", keys[i%len(keys)], 1)
					i++
				}
				results, err := c.SubmitBatch(ctx, 0, batch)
				if err != nil {
					return
				}
				for _, res := range results {
					if res.Accepted {
						total.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	allocs := mallocs() - m0
	deadline := time.Now().Add(2 * time.Second)
	for !c.Converged() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	flush := flushTelemetry(c)
	c.Close()
	return liveRowResult(tab, c, label, duration, total.Load(), allocs, flush)
}
