package main

// The -live mode: wall-clock throughput of the ACID 2.0 engine on the
// goroutine transport. Unlike the experiment tables, these numbers are
// NOT deterministic — they measure this machine, not the protocol.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	quicksand "repro"
	"repro/internal/stats"
)

// liveApp is a running sum: no rules, no folds on the submit path, so the
// measurement isolates the engine and transport.
type liveApp struct{}

func (liveApp) Init() int64                         { return 0 }
func (liveApp) Step(s int64, op quicksand.Op) int64 { return s + op.Arg }

func runLiveBench(duration time.Duration) {
	fmt.Println("\nLIVE: engine throughput on the goroutine transport (wall clock, this machine, not deterministic)")
	tab := stats.NewTable(
		fmt.Sprintf("live — blocking submits for %v per row, 3 replicas, gossip every 1ms", duration),
		"Each worker loops Submit(ctx, ...) against its home replica; latency from the cluster's async histogram.",
		"workers", "accepted", "ops/sec", "submit p50", "submit p99", "converged after quiesce")
	workerCounts := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, workers := range workerCounts {
		if workers < 1 || seen[workers] {
			continue
		}
		seen[workers] = true
		c := quicksand.New[int64](liveApp{}, nil,
			quicksand.WithGossipEvery(time.Millisecond))
		var total atomic.Int64
		var wg sync.WaitGroup
		stop := time.Now().Add(duration)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := context.Background()
				rep := w % c.Replicas()
				for time.Now().Before(stop) {
					res, err := c.Submit(ctx, rep, quicksand.NewOp("op", "k", 1))
					if err == nil && res.Accepted {
						total.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		// Quiesce: let gossip spread the tail, then stop it.
		deadline := time.Now().Add(2 * time.Second)
		for !c.Converged() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		c.Close()
		tab.AddRow(fmt.Sprint(workers), fmt.Sprint(total.Load()),
			fmt.Sprintf("%.0f", float64(total.Load())/duration.Seconds()),
			stats.Dur(c.M.AsyncLat.P50()), stats.Dur(c.M.AsyncLat.P99()),
			fmt.Sprint(c.Converged()))
	}
	fmt.Print(tab.String())
}
