package main

// The -live mode: wall-clock throughput of the ACID 2.0 engine on the
// goroutine transport, swept across shard counts. Unlike the experiment
// tables, these numbers are NOT deterministic — they measure this
// machine, not the protocol.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	quicksand "repro"
	"repro/internal/stats"
)

// liveApp is a running sum per key: no folds beyond one Step per entry on
// the submit path, so the measurement isolates the engine and transport.
type liveApp struct{}

func (liveApp) Init() int64                         { return 0 }
func (liveApp) Step(s int64, op quicksand.Op) int64 { return s + op.Arg }

// admitAll forces every submit through admission — the rule-checked
// shape real applications have — so each op derives state under its
// shard-replica's lock and the table measures lock-domain scaling.
func admitAll() quicksand.Rule[int64] {
	return quicksand.Rule[int64]{
		Name:  "admit-all",
		Admit: func(int64, quicksand.Op) bool { return true },
	}
}

func runLiveBench(duration time.Duration, maxShards int) {
	if maxShards < 1 {
		maxShards = 1
	}
	workers := runtime.NumCPU()
	fmt.Println("\nLIVE: engine throughput on the goroutine transport (wall clock, this machine, not deterministic)")
	tab := stats.NewTable(
		fmt.Sprintf("live — rule-checked submits for %v per row, %d workers, 3 replicas/shard, gossip every 1ms", duration, workers),
		"Every worker loops Submit(ctx, ...) at replica index 0 over 256 keys: unsharded, one replica mutex serializes them all; sharded, each shard's group folds and gossips only its own keys. The 1→N curve is the scaling sharding buys on this machine.",
		"shards", "accepted", "ops/sec", "submit p50", "submit p99", "converged after quiesce")
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	var counts []int
	for s := 1; s < maxShards; s *= 2 {
		counts = append(counts, s)
	}
	counts = append(counts, maxShards)
	for _, shards := range counts {
		c := quicksand.New[int64](liveApp{}, []quicksand.Rule[int64]{admitAll()},
			quicksand.WithShards(shards),
			quicksand.WithGossipEvery(time.Millisecond))
		var total atomic.Int64
		var wg sync.WaitGroup
		stop := time.Now().Add(duration)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := context.Background()
				for i := w * 7919; time.Now().Before(stop); i++ {
					res, err := c.Submit(ctx, 0, quicksand.NewOp("op", keys[i%len(keys)], 1))
					if err == nil && res.Accepted {
						total.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		// Quiesce: let gossip spread the tail, then stop it.
		deadline := time.Now().Add(2 * time.Second)
		for !c.Converged() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		c.Close()
		tab.AddRow(fmt.Sprint(shards), fmt.Sprint(total.Load()),
			fmt.Sprintf("%.0f", float64(total.Load())/duration.Seconds()),
			stats.Dur(c.M.AsyncLat.P50()), stats.Dur(c.M.AsyncLat.P99()),
			fmt.Sprint(c.Converged()))
	}
	fmt.Print(tab.String())
}
