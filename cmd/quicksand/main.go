// Command quicksand is the ops CLI for quicksandd daemons.
//
//	quicksand serve  -config node0.yaml           # run a daemon (same flags as quicksandd)
//	quicksand doctor -config node0.yaml           # preflight: dirs, fsync, ports, peers
//	quicksand ps     -addr http://127.0.0.1:8080,http://127.0.0.1:8081
//	quicksand submit -addr http://127.0.0.1:8080 deposit acct-1 500
//	quicksand submit -addr http://127.0.0.1:8080 -sync withdraw acct-1 200
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/client"
	"repro/internal/daemon"
	"repro/internal/promtext"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "doctor":
		err = cmdDoctor(os.Args[2:])
	case "ps":
		err = cmdPS(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "scrape":
		err = cmdScrape(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "quicksand: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "quicksand:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `quicksand — ops CLI for quicksandd daemons

commands:
  serve    run a daemon in the foreground (same flags as quicksandd)
  doctor   preflight a config: data dir, fsync, ports, peer reachability
  ps       show status of running daemons over their HTTP APIs
  submit   submit one operation through a daemon
  scrape   fetch /metrics, strictly validate the exposition format

run "quicksand <command> -h" for the command's flags.
`)
}

func cmdServe(args []string) error {
	cfg, err := daemon.ParseServeFlags(args)
	if err != nil {
		return err
	}
	return daemon.Serve(cfg, log.New(os.Stderr, "", log.LstdFlags).Printf)
}

func cmdDoctor(args []string) error {
	cfg, err := daemon.ParseServeFlags(args)
	if err != nil {
		return err
	}
	checks := daemon.Doctor(cfg)
	failed := 0
	for _, c := range checks {
		mark := "ok  "
		switch {
		case c.OK:
		case c.Advisory:
			mark = "warn"
		default:
			mark = "FAIL"
			failed++
		}
		fmt.Printf("%s  %-18s %s\n", mark, c.Name, c.Detail)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d checks failed", failed, len(checks))
	}
	fmt.Printf("all %d checks passed\n", len(checks))
	return nil
}

func cmdPS(args []string) error {
	fs := flag.NewFlagSet("ps", flag.ContinueOnError)
	addrs := fs.String("addr", "http://127.0.0.1:8080", "comma-separated daemon base URLs")
	token := fs.String("token", "", "API bearer token (enables the keys/apologies columns)")
	timeout := fs.Duration("timeout", 3*time.Second, "per-daemon probe timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	fmt.Printf("%-28s %-6s %-5s %-7s %-7s %-6s %-10s\n", "ADDR", "STATE", "NODE", "SHARDS", "REPLICAS", "KEYS", "APOLOGIES")
	var down int
	for _, addr := range strings.Split(*addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		c := client.New(addr, client.WithToken(*token), client.WithRetries(0))
		h, err := c.Health(ctx)
		if err != nil {
			fmt.Printf("%-28s %-6s %v\n", addr, "down", err)
			down++
			continue
		}
		// The /v1 columns need a valid token (or a tokenless daemon);
		// degrade to "-" rather than failing the whole row.
		keys, apologies := "-", "-"
		if st, err := c.State(ctx); err == nil {
			keys = strconv.Itoa(len(st.Keys))
		}
		if ap, err := c.Apologies(ctx); err == nil {
			apologies = strconv.Itoa(ap.Total)
		}
		fmt.Printf("%-28s %-6s %-5d %-7d %-7d %-6s %-10s\n", addr, "up", h.Node, h.Shards, h.Replicas, keys, apologies)
	}
	if down > 0 {
		return fmt.Errorf("%d daemon(s) unreachable", down)
	}
	return nil
}

// cmdScrape is the CI/ops metrics audit: fetch one daemon's /metrics,
// run it through the strict exposition parser and the semantic
// validator (histogram bucket monotonicity, +Inf vs _count, ...), and
// report scrape size and duration. -require fails unless the named
// families are present with at least one sample.
func cmdScrape(args []string) error {
	fs := flag.NewFlagSet("scrape", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	require := fs.String("require", "", "comma-separated metric families that must be present")
	timeout := fs.Duration("timeout", 5*time.Second, "scrape timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	hc := &http.Client{Timeout: *timeout}
	start := time.Now()
	resp, err := hc.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	took := time.Since(start)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics returned %s", resp.Status)
	}
	fams, err := promtext.Parse(string(body))
	if err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if err := promtext.Validate(fams); err != nil {
		return fmt.Errorf("validate: %w", err)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		f := promtext.Find(fams, name)
		if f == nil {
			return fmt.Errorf("required family %s missing", name)
		}
		if len(f.Samples) == 0 {
			return fmt.Errorf("required family %s has no samples", name)
		}
	}
	fmt.Printf("ok: %d families, %d samples, %d bytes in %v\n", len(fams), samples, len(body), took.Round(time.Microsecond))
	return nil
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	token := fs.String("token", "", "API bearer token")
	sync := fs.Bool("sync", false, "require classic coordination across replicas")
	id := fs.String("id", "", "idempotency key (defaults to a random one)")
	note := fs.String("note", "", "free-form annotation carried with the op")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: quicksand submit [flags] <kind> <key> <arg>\nexample: quicksand submit -sync withdraw acct-1 200")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 3 {
		fs.Usage()
		return fmt.Errorf("want <kind> <key> <arg>, got %d arguments", len(rest))
	}
	arg, err := strconv.ParseInt(rest[2], 10, 64)
	if err != nil {
		return fmt.Errorf("arg %q is not an integer: %v", rest[2], err)
	}
	c := client.New(*addr, client.WithToken(*token))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Submit(ctx, client.Op{Kind: rest[0], Key: rest[1], Arg: arg, ID: *id, Note: *note}, *sync)
	if err != nil {
		return err
	}
	out, _ := json.MarshalIndent(res, "", "  ")
	fmt.Println(string(out))
	if !res.Accepted {
		return fmt.Errorf("declined: %s", res.Reason)
	}
	return nil
}
