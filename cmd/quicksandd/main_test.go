package main

// The end-to-end process test (the PR's acceptance bar): build the real
// quicksandd binary, boot two daemons on loopback, drive a workload
// through the SDK, SIGKILL one mid-workload, restart it from its data
// dir, and prove the pair converges to exactly the per-key states and
// apology count an in-process LiveTransport control cluster reaches on
// the same script.
//
// Gossip is configured to a 1h interval and driven manually through
// POST /v1/gossip, which makes the script deterministic: both daemons
// admit the conflicting withdrawals against the converged balance
// before any anti-entropy can tattle, so the overdraft — and therefore
// the apology count — is forced, not timing-lucky.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/daemon"
)

const (
	nDepositKeys  = 10 // k0..k9 seeded with 100
	nOverdraft    = 5  // k0..k4 doubly withdrawn into overdraft
	nLateDeposits = 5  // k10..k14 deposited while B is dead
	seedAmount    = 100
	drawAmount    = 80
)

func key(i int) string { return fmt.Sprintf("k%d", i) }

// buildDaemon compiles the quicksandd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "quicksandd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build quicksandd: %v\n%s", err, out)
	}
	return bin
}

func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// proc is one spawned daemon.
type proc struct {
	t      *testing.T
	bin    string
	config string
	cmd    *exec.Cmd
}

func (p *proc) start() {
	p.t.Helper()
	p.cmd = exec.Command(p.bin, "-config", p.config)
	p.cmd.Stdout = os.Stderr
	p.cmd.Stderr = os.Stderr
	if err := p.cmd.Start(); err != nil {
		p.t.Fatal(err)
	}
}

// sigkill crashes the process the hard way and reaps it.
func (p *proc) sigkill() {
	p.t.Helper()
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// sigterm asks for a graceful drain and reports the exit error.
func (p *proc) sigterm() error {
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		return fmt.Errorf("daemon did not drain within 15s of SIGTERM")
	}
}

func waitHealthy(t *testing.T, c *client.Client) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		h, err := c.Health(ctx)
		cancel()
		if err == nil && h.OK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func mustSubmit(t *testing.T, c *client.Client, op client.Op) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Submit(ctx, op, false)
	if err != nil {
		t.Fatalf("submit %+v: %v", op, err)
	}
	if !res.Accepted {
		t.Fatalf("submit %+v declined: %s", op, res.Reason)
	}
}

// convergeDaemons drives manual gossip on both daemons until their
// /v1/state maps are identical (and non-empty), returning the agreed
// state.
func convergeDaemons(t *testing.T, ca, cb *client.Client) map[string]int64 {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		errA, errB := ca.Gossip(ctx), cb.Gossip(ctx)
		sa, errSA := ca.State(ctx)
		sb, errSB := cb.State(ctx)
		cancel()
		if errA == nil && errB == nil && errSA == nil && errSB == nil &&
			len(sa.Keys) > 0 && reflect.DeepEqual(sa.Keys, sb.Keys) {
			return sa.Keys
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemons never converged:\n  A(%v): %v\n  B(%v): %v", errSA, sa.Keys, errSB, sb.Keys)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runControl replays the same script against an in-process cluster on
// the LiveTransport: the oracle the networked pair must match.
func runControl(t *testing.T) (map[string]int64, int) {
	t.Helper()
	c := core.New[daemon.Accounts](daemon.AccountsApp{}, []core.Rule[daemon.Accounts]{daemon.NoOverdraft()},
		core.WithTransport(core.NewLiveTransport()),
		core.WithReplicas(2),
		core.WithCallTimeout(500*time.Millisecond))
	defer c.Close()
	ctx := context.Background()

	submit := func(rep int, op core.Op) {
		t.Helper()
		res, err := c.Submit(ctx, rep, op)
		if err != nil || !res.Accepted {
			t.Fatalf("control submit %+v at r%d: res=%+v err=%v", op, rep, res, err)
		}
	}
	converge := func() {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !c.Converged() {
			c.GossipRound()
			if time.Now().After(deadline) {
				t.Fatal("control cluster never converged")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 1: seed deposits, split across replicas; converge.
	for i := 0; i < nDepositKeys; i++ {
		submit(i%2, core.NewOp("deposit", key(i), seedAmount))
	}
	converge()
	// Phase 2: conflicting withdrawals admitted on both sides of the
	// not-yet-gossiped window.
	for i := 0; i < nOverdraft; i++ {
		submit(0, core.NewOp("withdraw", key(i), drawAmount))
		submit(1, core.NewOp("withdraw", key(i), drawAmount))
	}
	// Phase 3: replica 0 keeps taking business alone.
	for i := nDepositKeys; i < nDepositKeys+nLateDeposits; i++ {
		submit(0, core.NewOp("deposit", key(i), seedAmount))
	}
	// Phase 4: merge; the overdrafts surface as apologies.
	converge()

	return map[string]int64(c.States()[0]), c.Apologies.Total()
}

func TestTwoProcessClusterSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and boots processes")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	ports := freePorts(t, 4) // 0,1: peer listeners; 2,3: http
	peerList := fmt.Sprintf("0=%s,1=%s", ports[0], ports[1])

	writeConfig := func(node int) string {
		path := filepath.Join(dir, fmt.Sprintf("node%d.yaml", node))
		cfg := fmt.Sprintf(`# e2e node %d
node: %d
replicas: 2
http_listen: %s
peer_listen: %s
peers: %s
peer_token: mesh-secret
api_token: api-secret
data_dir: %s
gossip_every: 1h  # manual rounds via /v1/gossip keep the script deterministic
`, node, node, ports[2+node], ports[node], peerList, filepath.Join(dir, fmt.Sprintf("data%d", node)))
		if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	pa := &proc{t: t, bin: bin, config: writeConfig(0)}
	pb := &proc{t: t, bin: bin, config: writeConfig(1)}
	pa.start()
	t.Cleanup(func() {
		if pa.cmd.ProcessState == nil {
			pa.sigkill()
		}
	})
	pb.start()
	t.Cleanup(func() {
		if pb.cmd.ProcessState == nil {
			pb.sigkill()
		}
	})

	ca := client.New("http://"+ports[2], client.WithToken("api-secret"))
	cb := client.New("http://"+ports[3], client.WithToken("api-secret"))
	waitHealthy(t, ca)
	waitHealthy(t, cb)

	// Phase 1: seed deposits through the SDK, split across daemons.
	for i := 0; i < nDepositKeys; i++ {
		c := ca
		if i%2 == 1 {
			c = cb
		}
		mustSubmit(t, c, client.Op{Kind: "deposit", Key: key(i), Arg: seedAmount})
	}
	agreed := convergeDaemons(t, ca, cb)
	for i := 0; i < nDepositKeys; i++ {
		if agreed[key(i)] != seedAmount {
			t.Fatalf("after seeding, %s = %d, want %d", key(i), agreed[key(i)], seedAmount)
		}
	}

	// Phase 2: both daemons admit a withdrawal against the same
	// converged balance — individually sound guesses, jointly an
	// overdraft (the paper's §5.2 in two processes).
	for i := 0; i < nOverdraft; i++ {
		mustSubmit(t, ca, client.Op{Kind: "withdraw", Key: key(i), Arg: drawAmount})
		mustSubmit(t, cb, client.Op{Kind: "withdraw", Key: key(i), Arg: drawAmount})
	}

	// Phase 3: SIGKILL B mid-workload. A must keep accepting business.
	pb.sigkill()
	for i := nDepositKeys; i < nDepositKeys+nLateDeposits; i++ {
		mustSubmit(t, ca, client.Op{Kind: "deposit", Key: key(i), Arg: seedAmount})
	}
	// A sync submit with the only peer dead must decline within the call
	// timeout, not hang: the dead daemon is a partitioned replica.
	{
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		start := time.Now()
		res, err := ca.Submit(ctx, client.Op{Kind: "deposit", Key: "sync-probe", Arg: 1}, true)
		cancel()
		if err != nil {
			t.Fatalf("sync submit against dead peer errored at transport level: %v", err)
		}
		if res.Accepted {
			t.Fatalf("sync submit succeeded with its only peer SIGKILLed: %+v", res)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("sync submit took %v against a dead peer; degradation must be bounded", elapsed)
		}
	}

	// Phase 4: restart B from its data dir; crash recovery replays its
	// journal (including the phase-2 withdrawals it acknowledged).
	pb.start()
	waitHealthy(t, cb)

	// Phase 5: converge and compare against the in-process control.
	final := convergeDaemons(t, ca, cb)
	controlState, controlApologies := runControl(t)
	delete(final, "sync-probe") // declined leftovers never fold, but keep the comparison honest
	if !reflect.DeepEqual(final, controlState) {
		t.Fatalf("networked state diverged from control:\n  net:     %v\n  control: %v", final, controlState)
	}

	apA, err := ca.Apologies(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	apB, err := cb.Apologies(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if apA.Total != controlApologies || apB.Total != controlApologies {
		t.Fatalf("apology counts: A=%d B=%d control=%d", apA.Total, apB.Total, controlApologies)
	}
	if controlApologies != nOverdraft {
		t.Fatalf("control found %d apologies, want %d (one per overdrawn key)", controlApologies, nOverdraft)
	}

	// Phase 6: graceful drain on SIGTERM, clean exits.
	if err := pa.sigterm(); err != nil {
		t.Fatalf("daemon A did not exit cleanly: %v", err)
	}
	if err := pb.sigterm(); err != nil {
		t.Fatalf("daemon B did not exit cleanly: %v", err)
	}
}
