// Command quicksandd runs one node of a quicksand cluster: replica
// index -node of every shard, serving clients over a versioned HTTP API
// and peers over the binary TCP transport.
//
// Usage:
//
//	quicksandd -config node0.yaml
//	quicksandd -node 0 -replicas 2 \
//	    -http 127.0.0.1:8080 -peer-listen 127.0.0.1:7000 \
//	    -peers 0=127.0.0.1:7000,1=127.0.0.1:7001 \
//	    -data /var/lib/quicksand/n0
//
// Flags override config-file keys of the same meaning. SIGINT/SIGTERM
// trigger a graceful shutdown: HTTP drains, the ingest ring empties, and
// every journal is flushed and fsynced before exit; a failed flush is a
// non-zero exit status.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/daemon"
)

func main() {
	cfg, err := daemon.ParseServeFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "quicksandd:", err)
		os.Exit(2)
	}
	if err := daemon.Serve(cfg, log.New(os.Stderr, "", log.LstdFlags).Printf); err != nil {
		fmt.Fprintln(os.Stderr, "quicksandd:", err)
		os.Exit(1)
	}
}
