package main

// The multi-core bench matrix the ROADMAP asks for: BENCH_live.json was
// recorded on a 1-CPU box where shards=4 showed no scaling and small
// ingest batches lost — numbers that say nothing about what the
// sharding and pipelining PRs bought on real hardware. The matrix
// sweeps effective GOMAXPROCS × shard count × ingest batch, setting
// runtime.GOMAXPROCS per arm, so one run on a many-core machine
// produces the whole scaling grid. Each row records the GOMAXPROCS in
// effect while it ran.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/loadgen"
)

// matrixProcs picks the GOMAXPROCS sweep: powers of two up to NumCPU,
// plus NumCPU itself when it is not a power of two.
func matrixProcs() []int {
	n := runtime.NumCPU()
	var out []int
	for p := 1; p <= n; p *= 2 {
		out = append(out, p)
	}
	if len(out) == 0 || out[len(out)-1] != n {
		out = append(out, n)
	}
	return out
}

// runMatrix sweeps the grid against the chosen stack (default live),
// one fresh deployment per arm, closed-loop traffic for the window.
func runMatrix(ctx context.Context, stack string, window time.Duration, seed int64, jsonPath string, out io.Writer) error {
	if stack == "" {
		stack = "live"
	}
	if window > 5*time.Second {
		// -duration defaults to 30s for scenarios; a full grid at 30s per
		// arm would run for many minutes. The matrix default is per-arm.
		window = 5 * time.Second
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var rows []loadgen.Row
	for _, procs := range matrixProcs() {
		for _, shards := range []int{1, 4} {
			for _, ingest := range []int{0, 256} {
				if err := ctx.Err(); err != nil {
					return err
				}
				runtime.GOMAXPROCS(procs)
				arm := fmt.Sprintf("procs=%d shards=%d ingest=%d", procs, shards, ingest)
				row, err := runMatrixArm(ctx, stack, shards, ingest, window, seed)
				if err != nil {
					return fmt.Errorf("matrix arm %s: %w", arm, err)
				}
				row.Arm = arm
				rows = append(rows, row)
				if out != nil {
					fmt.Fprintf(out, "%-28s %9.0f ops/s  p50 %6.2fms  p99 %6.2fms\n",
						arm, row.OpsPerSec, row.P50Ns/1e6, row.P99Ns/1e6)
				}
			}
		}
	}
	runtime.GOMAXPROCS(prev)
	if jsonPath != "" {
		return loadgen.AppendRows(jsonPath, rows...)
	}
	return nil
}

// runMatrixArm measures one grid cell: fresh deployment, closed-loop
// uniform 80/20 traffic, converge, report.
func runMatrixArm(ctx context.Context, stack string, shards, ingest int, window time.Duration, seed int64) (loadgen.Row, error) {
	tgt, cleanup, err := buildStack(stack, "", 3, shards, ingest, 0)
	if err != nil {
		return loadgen.Row{}, err
	}
	defer func() {
		tgt.Close()
		if cleanup != nil {
			cleanup()
		}
	}()
	rep, err := loadgen.Run(ctx, tgt, loadgen.Spec{
		Duration: window,
		Keys:     1024,
		Seed:     seed,
	})
	if err != nil {
		return loadgen.Row{}, err
	}
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	converged := tgt.Converge(cctx) == nil
	row := loadgen.FromReport(rep)
	row.Scenario = "matrix"
	row.Stack = stack
	row.Seed = seed
	row.Shards = shards
	row.Replicas = 3
	row.IngestBatch = ingest
	row.Passed = converged
	return row, nil
}
