// quicksand-load is the sustained traffic driver and chaos-scenario
// runner. It holds a configurable ops/s target (or runs closed-loop)
// against an in-process cluster — volatile or durable — or a set of
// networked daemons, streaming per-second throughput and latency while
// it runs, and appends machine-readable result rows to
// BENCH_scenarios.json.
//
//	quicksand-load -list
//	quicksand-load -scenario flash-sale -duration 30s
//	quicksand-load -scenario partition-storm -stack net -duration 30s
//	quicksand-load -stack durable -rate 20000 -duration 60s -dist zipf
//	quicksand-load -matrix -duration 3s
//	quicksand-load -stack net -addrs host1:8080,host2:8080 -duration 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/loadgen/scenario"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list named scenarios and exit")
		scen     = flag.String("scenario", "", "run a named scenario (see -list)")
		matrix   = flag.Bool("matrix", false, "run the GOMAXPROCS × shards × ingest bench matrix")
		stack    = flag.String("stack", "", "target stack: live, durable, or net (scenario default otherwise)")
		addrs    = flag.String("addrs", "", "comma-separated daemon HTTP addresses (external net stack)")
		token    = flag.String("token", "", "API bearer token for -addrs daemons")
		dataDir  = flag.String("data", "", "durable data root (default: fresh temp dir)")
		duration = flag.Duration("duration", 30*time.Second, "traffic window")
		rate     = flag.Float64("rate", 0, "offered ops/s target (0 = closed loop)")
		workers  = flag.Int("workers", 0, "concurrent submitters (default GOMAXPROCS)")
		keys     = flag.Int("keys", 0, "key-space size (scenario default, or 256)")
		dist     = flag.String("dist", "uniform", "key distribution: uniform, zipf, hotkey")
		zipfSkew = flag.Float64("zipf", 1.2, "Zipf skew parameter (with -dist zipf)")
		hotFrac  = flag.Float64("hotfrac", 0.5, "hot-key traffic fraction (with -dist hotkey)")
		deposit  = flag.Float64("deposit", 0.8, "deposit fraction of the op mix")
		syncFrac = flag.Float64("sync", 0, "fraction of ops coordinated synchronously")
		batch    = flag.Int("batch", 0, "ops per submit request (<=1 = one at a time)")
		replicas = flag.Int("replicas", 3, "replicas per shard")
		shards   = flag.Int("shards", 1, "shard count")
		ingest   = flag.Int("ingest", 0, "ingest pipeline batch cap (0 = per-op path)")
		seed     = flag.Int64("seed", 1, "workload seed")
		jsonPath = flag.String("json", "BENCH_scenarios.json", "result JSON path (empty = don't write)")
		quiet    = flag.Bool("q", false, "suppress the per-second stream")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *list {
		for _, s := range scenario.All() {
			fmt.Printf("%-16s %-8s %s\n", s.Name, s.Stack, s.Desc)
		}
		return
	}

	out := os.Stdout
	if *quiet {
		out = nil
	}

	switch {
	case *matrix:
		if err := runMatrix(ctx, *stack, *duration, *seed, *jsonPath, out); err != nil {
			fatal(err)
		}
	case *scen != "":
		s, err := scenario.ByName(*scen)
		if err != nil {
			fatal(err)
		}
		cfg := scenario.Config{
			Stack:       *stack,
			DataDir:     *dataDir,
			Duration:    *duration,
			Workers:     *workers,
			Rate:        *rate,
			Keys:        *keys,
			Replicas:    *replicas,
			Shards:      *shards,
			IngestBatch: *ingest,
			Seed:        *seed,
		}
		if out != nil {
			cfg.Out = out
		}
		fmt.Printf("scenario %s: %s\n", s.Name, s.Desc)
		res, err := s.Run(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		printRow(res.Row)
		writeRows(*jsonPath, res.Row)
		if !res.Row.Passed {
			for _, c := range res.Failed() {
				fmt.Fprintf(os.Stderr, "INVARIANT FAILED %s: %s\n", c.Name, c.Detail)
			}
			os.Exit(1)
		}
	default:
		if err := runRaw(ctx, rawConfig{
			stack: *stack, addrs: *addrs, token: *token, dataDir: *dataDir,
			spec: loadgen.Spec{
				Workers: *workers, Rate: *rate, Duration: *duration,
				Keys: *keys, Dist: loadgen.KeyDist(*dist), ZipfSkew: *zipfSkew,
				HotFrac: *hotFrac, DepositFrac: *deposit, SyncFrac: *syncFrac,
				Batch: *batch, Seed: *seed,
			},
			replicas: *replicas, shards: *shards, ingest: *ingest,
			jsonPath: *jsonPath, out: out,
		}); err != nil {
			fatal(err)
		}
	}
}

type rawConfig struct {
	stack    string
	addrs    string
	token    string
	dataDir  string
	spec     loadgen.Spec
	replicas int
	shards   int
	ingest   int
	jsonPath string
	out      *os.File
}

// runRaw drives the knob-built workload (no named scenario, no fault
// schedule) against the chosen stack and reports the measurements.
func runRaw(ctx context.Context, rc rawConfig) error {
	if rc.stack == "" {
		rc.stack = scenario.StackLive
	}
	if rc.out != nil {
		rc.spec.Out = rc.out
	}
	var (
		tgt     loadgen.Target
		cleanup func()
		err     error
	)
	if rc.stack == scenario.StackNet && rc.addrs != "" {
		var clients []*client.Client
		var copts []client.Option
		if rc.token != "" {
			copts = append(copts, client.WithToken(rc.token))
		}
		for _, a := range strings.Split(rc.addrs, ",") {
			clients = append(clients, client.New(strings.TrimSpace(a), copts...))
		}
		tgt = loadgen.WrapClients(clients...)
	} else {
		tgt, cleanup, err = buildStack(rc.stack, rc.dataDir, rc.replicas, rc.shards, rc.ingest, 0)
		if err != nil {
			return err
		}
	}
	defer func() {
		tgt.Close()
		if cleanup != nil {
			cleanup()
		}
	}()
	rep, err := loadgen.Run(ctx, tgt, rc.spec)
	if err != nil {
		return err
	}
	cv := ""
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if cerr := tgt.Converge(cctx); cerr != nil {
		cv = " (did NOT converge: " + cerr.Error() + ")"
	}
	rep.Apologies = int64(tgt.Apologies())
	if rep.Accepted > 0 {
		rep.ApologyRate = float64(rep.Apologies) / float64(rep.Accepted)
	}
	row := loadgen.FromReport(rep)
	row.Scenario = "raw"
	row.Stack = rc.stack
	row.Seed = rc.spec.Seed
	row.Shards = rc.shards
	row.Replicas = rc.replicas
	row.IngestBatch = rc.ingest
	row.Passed = cv == ""
	printRow(row)
	if cv != "" {
		fmt.Println(cv)
	}
	writeRows(rc.jsonPath, row)
	return nil
}

// buildStack realizes a self-hosted target for raw and matrix runs.
// The returned cleanup removes any temp data dir.
func buildStack(stack, dataDir string, replicas, shards, ingest int, fsyncDelay time.Duration) (loadgen.Target, func(), error) {
	switch stack {
	case scenario.StackNet:
		var cleanup func()
		if dataDir == "" {
			dataDir = "" // volatile daemons
		}
		t, err := loadgen.NewNetTarget(replicas, shards, ingest, dataDir, 10*time.Millisecond)
		return t, cleanup, err
	case scenario.StackDurable:
		cleanup := func() {}
		if dataDir == "" {
			dir, err := os.MkdirTemp("", "quicksand-load-*")
			if err != nil {
				return nil, nil, err
			}
			dataDir = dir
			cleanup = func() { os.RemoveAll(dir) }
		}
		opts := clusterOpts(replicas, shards, ingest)
		opts = append(opts, core.WithDurability(dataDir))
		if fsyncDelay > 0 {
			opts = append(opts, core.WithFsyncDelay(fsyncDelay))
		}
		return loadgen.NewAccountsCluster(opts...), cleanup, nil
	case scenario.StackLive, "":
		return loadgen.NewAccountsCluster(clusterOpts(replicas, shards, ingest)...), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown stack %q", stack)
	}
}

func clusterOpts(replicas, shards, ingest int) []core.Option {
	opts := []core.Option{
		core.WithReplicas(replicas),
		core.WithGossipEvery(5 * time.Millisecond),
	}
	if shards > 1 {
		opts = append(opts, core.WithShards(shards))
	}
	if ingest > 0 {
		opts = append(opts, core.WithIngestBatch(ingest))
	}
	return opts
}

func printRow(r loadgen.Row) {
	fmt.Printf("%s/%s: %.0f ops/s  accepted %d  declined %d (%.2f%%)  errors %d  p50 %.2fms p99 %.2fms p999 %.2fms  apologies %d (rate %.2e)  passed=%v\n",
		r.Scenario, r.Stack, r.OpsPerSec, r.Accepted, r.Declined, 100*r.DeclineRate,
		r.Errors, r.P50Ns/1e6, r.P99Ns/1e6, r.P999Ns/1e6, r.Apologies, r.ApologyRate, r.Passed)
}

func writeRows(path string, rows ...loadgen.Row) {
	if path == "" {
		return
	}
	if err := loadgen.AppendRows(path, rows...); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quicksand-load:", err)
	os.Exit(1)
}
