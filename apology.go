package quicksand

// The memories/guesses/apologies machinery of §5.7, re-exported from
// internal/apology: ledgers record what each replica remembered, guessed,
// and regretted; the queue routes discovered violations to automated
// compensation handlers first and humans last (§5.6).

import "repro/internal/apology"

type (
	// Apology is a discovered business-rule violation that someone must
	// now smooth over.
	Apology = apology.Apology
	// ApologyHandler attempts automated compensation, returning true if
	// it handled the apology.
	ApologyHandler = apology.Handler
	// ApologyQueue routes apologies to handlers, then to humans. A
	// Cluster's Apologies field holds one shared by all replicas.
	ApologyQueue = apology.Queue
	// Ledger is one replica's append-only record of memories, guesses,
	// and apologies.
	Ledger = apology.Ledger
	// LedgerEntry is one ledger line.
	LedgerEntry = apology.Entry
	// LedgerKind classifies a ledger entry.
	LedgerKind = apology.Kind
)

// The three categories of all computing (§5.7).
const (
	// Memory: the replica saw and recorded something.
	Memory = apology.Memory
	// Guess: the replica acted on local, partial knowledge.
	Guess = apology.Guess
	// Regret: the replica discovered a guess was wrong.
	Regret = apology.Regret
)
