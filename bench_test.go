package quicksand

// One benchmark per experiment table. Each bench regenerates the table the
// experiment produces (the repository's stand-in for the paper's missing
// evaluation section) and reports its wall cost. Run with:
//
//	go test -bench=. -benchmem
//
// Use -v (or read bench_output.txt) to see the tables themselves; every
// run is deterministic for a fixed seed.

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/stats"
)

// runExperiment drives one experiment under the benchmark loop and logs
// its table once.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = e.Run(1)
	}
	b.StopTimer()
	b.Logf("%s: %s\nclaim — %s\n%s", e.ID, e.Title, e.Claim, tab.String())
}

// BenchmarkE1TandemDP1vsDP2 regenerates E1: per-WRITE checkpointing vs
// log-based checkpointing (§3.2).
func BenchmarkE1TandemDP1vsDP2(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2TandemFailover regenerates E2: failover aborts vs lost
// committed work (§3.2–3.3).
func BenchmarkE2TandemFailover(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3LogShipLatency regenerates E3: sync vs async commit latency
// over distance (§4.1).
func BenchmarkE3LogShipLatency(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4LogShipLoss regenerates E4: the takeover loss window vs
// shipping lag (§4.2).
func BenchmarkE4LogShipLoss(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5CartReconcile regenerates E5: sibling reconciliation on the
// Dynamo cart (§6.1).
func BenchmarkE5CartReconcile(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6BankClearing regenerates E6: replicated check clearing,
// convergence, and overdraft risk (§6.2, §7.6).
func BenchmarkE6BankClearing(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7Escrow regenerates E7: escrow vs exclusive locking (§5.3).
func BenchmarkE7Escrow(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8Allocation regenerates E8: over-provisioning vs over-booking
// (§7.1).
func BenchmarkE8Allocation(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9Seats regenerates E9: the seat-reservation pattern vs a
// scalper (§7.3).
func BenchmarkE9Seats(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10RiskPolicy regenerates E10: the $10,000-check risk dial
// (§5.5, §5.8).
func BenchmarkE10RiskPolicy(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11Idempotence regenerates E11: retries and uniquifiers (§2.1,
// §5.4).
func BenchmarkE11Idempotence(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12CAPAvailability regenerates E12: 2PC vs ACID 2.0 gossip
// under churn (§2.3, §8.2).
func BenchmarkE12CAPAvailability(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13IncrementalFold regenerates E13: checkpointed vs
// full-refold state derivation cost as the ledger grows (§3.3, §7.6).
func BenchmarkE13IncrementalFold(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkE14ShardedHotKey regenerates E14: sharded vs unsharded replica
// groups under a hot-key skewed clearing workload (§2.3, §6.2).
func BenchmarkE14ShardedHotKey(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkA1OpVsStateMerge regenerates ablation A1: operation-centric vs
// state-merge carts (§6.4).
func BenchmarkA1OpVsStateMerge(b *testing.B) { runExperiment(b, "A1") }

// BenchmarkA2GroupCommit regenerates ablation A2: the group-commit bus
// (§3.2).
func BenchmarkA2GroupCommit(b *testing.B) { runExperiment(b, "A2") }

// BenchmarkA3QuorumSweep regenerates ablation A3: the Dynamo R/W quorum
// trade.
func BenchmarkA3QuorumSweep(b *testing.B) { runExperiment(b, "A3") }

// BenchmarkA4MerkleAntiEntropy regenerates ablation A4: whole-store vs
// Merkle-tree anti-entropy transfer cost.
func BenchmarkA4MerkleAntiEntropy(b *testing.B) { runExperiment(b, "A4") }
