package quicksand_test

// The acceptance suite for the batched single-writer ingest pipeline
// (WithIngestBatch): batched ingest must be observationally equivalent to
// the per-op path — same accepted operations, same declines, same
// apologies, same final states — on both transports and at every batch
// size, and the lock-free read path must stay safe under concurrent
// ingest and kill/recover churn. Experiment E16 is the deterministic
// sim-transport sibling of these tests.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	quicksand "repro"
)

// ingestWorkload drives one cluster through a schedule whose outcomes
// are timing-independent: every account is seeded and converged before
// any check clears, each key's checks are always submitted at the same
// replica (so the local guess covers them identically in every run), and
// two deliberate overdraft pairs — concurrent clears of the same seeded
// account at different replicas, each locally covered — produce exactly
// two standing violations once gossip merges them. It returns the
// per-op results, the converged states, and the apology total.
func ingestWorkload(t *testing.T, h harness, opts ...quicksand.Option) ([]quicksand.Result, []balances, int) {
	t.Helper()
	c, d := h.newCluster(t, opts...)
	defer c.Close()
	ctx := context.Background()
	const nKeys = 12
	key := func(k int) string { return fmt.Sprintf("acct-%02d", k) }
	repOf := func(k int) int { return k % c.Replicas() }

	// Seed and converge, so every replica's guess covers what follows.
	for k := 0; k < nKeys; k++ {
		op := quicksand.NewOp("deposit", key(k), 1000)
		op.ID = quicksand.OpID(fmt.Sprintf("seed-%02d", k))
		if res, err := c.Submit(ctx, repOf(k), op); err != nil || !res.Accepted {
			t.Fatalf("seed %d = %+v, %v", k, res, err)
		}
	}
	d.converge(t, c)

	var results []quicksand.Result
	// Single submits: deposits, covered checks, and a decline per key (a
	// check far beyond the balance, refused by the local guess).
	for i := 0; i < 6*nKeys; i++ {
		k := i % nKeys
		kind, arg := "deposit", int64(10+i%7)
		switch i % 3 {
		case 1:
			kind, arg = "clear-check", int64(1+i%5)
		case 2:
			if i%6 == 5 {
				kind, arg = "clear-check", 1_000_000 // always declined
			}
		}
		op := quicksand.NewOp(kind, key(k), arg)
		op.ID = quicksand.OpID(fmt.Sprintf("one-%03d", i))
		res, err := c.Submit(ctx, repOf(k), op)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		results = append(results, res)
	}
	// A bulk batch with mixed keys, exercising the vectorized path (and
	// the scatter path on sharded clusters).
	batch := make([]quicksand.Op, 4*nKeys)
	for i := range batch {
		k := i % nKeys
		batch[i] = quicksand.NewOp("deposit", key(k), int64(i+1))
		batch[i].ID = quicksand.OpID(fmt.Sprintf("blk-%03d", i))
	}
	bres, err := c.SubmitBatch(ctx, 0, batch)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	results = append(results, bres...)
	// Idempotent retries of work already accepted.
	for _, id := range []string{"one-000", "blk-000", "seed-00"} {
		op := quicksand.NewOp("deposit", key(0), 999)
		op.ID = quicksand.OpID(id)
		res, err := c.Submit(ctx, 0, op)
		if err != nil || !res.Accepted {
			t.Fatalf("retry %s = %+v, %v", id, res, err)
		}
		results = append(results, res)
	}
	// A mixed-policy batch: clears coordinate (ByKind), deposits guess.
	// The sync clear sits between two async deposits on the same key, so
	// it must observe the first deposit's absorption (strictly greater
	// Lamport stamp) — a coordinated op never overtakes a queued guess.
	mixed := []quicksand.Op{
		quicksand.NewOp("deposit", key(2), 7),
		quicksand.NewOp("clear-check", key(2), 3),
		quicksand.NewOp("deposit", key(2), 11),
		quicksand.NewOp("clear-check", key(3), 5),
		quicksand.NewOp("deposit", key(4), 9),
	}
	for i := range mixed {
		mixed[i].ID = quicksand.OpID(fmt.Sprintf("mix-%02d", i))
	}
	mres, err := c.SubmitBatch(ctx, 0, mixed, quicksand.WithPolicy(quicksand.ByKind("clear-check")))
	if err != nil {
		t.Fatalf("mixed batch: %v", err)
	}
	for i, res := range mres {
		if !res.Accepted {
			t.Fatalf("mixed op %d declined: %s", i, res.Reason)
		}
	}
	if mres[1].Decision != quicksand.Sync || mres[0].Decision != quicksand.Async {
		t.Fatalf("mixed decisions = %v/%v, want async/sync", mres[0].Decision, mres[1].Decision)
	}
	if mres[1].Op.Lam <= mres[0].Op.Lam {
		t.Fatalf("sync clear stamped Lam %d, not after the queued deposit's %d — it overtook the guess",
			mres[1].Op.Lam, mres[0].Op.Lam)
	}
	results = append(results, mres...)
	// The deliberate overdraft pairs: accounts 0 and 1 hold well under
	// 2×600, yet each clear is covered by its submitting replica's local
	// guess, so both are accepted everywhere and the merged truth goes
	// negative — a standing violation discovered at convergence.
	for _, k := range []int{0, 1} {
		bal := c.ShardStates(c.ShardOf(key(k)))[0][key(k)]
		half := bal/2 + 100 // covered alone, overdrawn together
		for r := 0; r < 2; r++ {
			op := quicksand.NewOp("clear-check", key(k), half)
			op.ID = quicksand.OpID(fmt.Sprintf("odr-%d-%d", k, r))
			res, err := c.Submit(ctx, r, op)
			if err != nil || !res.Accepted {
				t.Fatalf("overdraft pair %d/%d = %+v, %v", k, r, res, err)
			}
			results = append(results, res)
		}
	}
	d.converge(t, c)
	// One more fold everywhere so every replica has swept the merged
	// truth for violations.
	states := c.States()
	return results, states, c.Apologies.Total()
}

// TestBatchedIngestMatchesPerOp is the pipeline's differential
// acceptance test: the same schedule run with per-op ingest and with
// batch sizes 1, 64, and 1024 must produce identical per-op outcomes,
// identical converged states, and identical apologies — on both
// transports, sharded and unsharded.
func TestBatchedIngestMatchesPerOp(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
				base := []quicksand.Option{quicksand.WithShards(shards)}
				wantRes, wantStates, wantApologies := ingestWorkload(t, h, base...)
				for _, batch := range []int{1, 64, 1024} {
					gotRes, gotStates, gotApologies := ingestWorkload(t, h,
						append([]quicksand.Option{quicksand.WithIngestBatch(batch)}, base...)...)
					if len(gotRes) != len(wantRes) {
						t.Fatalf("batch=%d: %d results, want %d", batch, len(gotRes), len(wantRes))
					}
					for i := range wantRes {
						if gotRes[i].Accepted != wantRes[i].Accepted ||
							gotRes[i].Reason != wantRes[i].Reason ||
							gotRes[i].Decision != wantRes[i].Decision ||
							gotRes[i].Op.ID != wantRes[i].Op.ID {
							t.Fatalf("batch=%d: result %d diverged: %+v vs per-op %+v",
								batch, i, gotRes[i], wantRes[i])
						}
					}
					if len(gotStates) != len(wantStates) {
						t.Fatalf("batch=%d: %d states, want %d", batch, len(gotStates), len(wantStates))
					}
					for i := range wantStates {
						if len(gotStates[i]) != len(wantStates[i]) {
							t.Fatalf("batch=%d: replica %d key sets differ", batch, i)
						}
						for acct, bal := range wantStates[i] {
							if gotStates[i][acct] != bal {
								t.Fatalf("batch=%d: replica %d diverged on %s: %d vs per-op %d",
									batch, i, acct, gotStates[i][acct], bal)
							}
						}
					}
					if gotApologies != wantApologies {
						t.Fatalf("batch=%d: %d apologies, want %d", batch, gotApologies, wantApologies)
					}
				}
			})
		}
	})
}

// TestIngestWorkloadSurfacesApologies pins that the differential
// workload is not vacuous: its overdraft pairs really do produce
// apologies, so the equality assertion above compares something.
func TestIngestWorkloadSurfacesApologies(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		_, _, apologies := ingestWorkload(t, h, quicksand.WithIngestBatch(64))
		if apologies != 2 {
			t.Fatalf("workload produced %d apologies, want 2", apologies)
		}
	})
}

// TestFoldEnginesAgreeUnderBatchedIngest extends TestFoldEnginesAgree
// across the pipeline: the checkpointed fold engine must derive the same
// states whether entries arrive per-op or in batches of 1, 64, or 1024,
// and the full-refold oracle must agree with all of them.
func TestFoldEnginesAgreeUnderBatchedIngest(t *testing.T) {
	forEachTransport(t, func(t *testing.T, h harness) {
		workload := func(opts ...quicksand.Option) []balances {
			c, d := h.newCluster(t, opts...)
			defer c.Close()
			ctx := context.Background()
			batch := make([]quicksand.Op, 60)
			for i := range batch {
				batch[i] = quicksand.NewOp("deposit", fmt.Sprintf("acct-%d", i%5), int64(10+i))
				batch[i].ID = quicksand.OpID(fmt.Sprintf("wk-%03d", i))
			}
			if _, err := c.SubmitBatch(ctx, 0, batch); err != nil {
				t.Fatal(err)
			}
			d.converge(t, c)
			return c.States()
		}
		want := workload(quicksand.WithFullRefold())
		for _, arm := range [][]quicksand.Option{
			nil,
			{quicksand.WithIngestBatch(1)},
			{quicksand.WithIngestBatch(64)},
			{quicksand.WithIngestBatch(1024)},
			{quicksand.WithIngestBatch(64), quicksand.WithFullRefold()},
		} {
			got := workload(arm...)
			for i := range want {
				for acct, bal := range want[i] {
					if got[i][acct] != bal {
						t.Fatalf("arm %v: replica %d diverged on %s: %d, oracle %d",
							arm, i, acct, got[i][acct], bal)
					}
				}
			}
		}
	})
}

// TestConcurrentReadersDuringIngest is the lock-free read acceptance
// test, meant for -race: reader goroutines hammer State, ShardStates,
// and OpCount while batched writers ingest and one replica is
// kill/recover churned. Readers must never observe a torn fold snapshot
// (the race detector would flag a map read racing a fold) and never
// observe a state the engine later mutates in place — every snapshot
// must still sum consistently after the fact.
func TestConcurrentReadersDuringIngest(t *testing.T) {
	dir := t.TempDir()
	c := quicksand.New[balances](exampleApp{}, nil,
		quicksand.WithIngestBatch(64),
		quicksand.WithGossipEvery(time.Millisecond),
		quicksand.WithDurability(dir),
		quicksand.WithSnapshotEvery(256))
	defer c.Close()
	ctx := context.Background()

	const (
		writers   = 4
		perWriter = 30
		batchSize = 25
		readers   = 4
	)
	var stop atomic.Bool
	var readWG, writeWG sync.WaitGroup

	// Readers: never touch the replica lock on the fast path, never see a
	// torn fold (the race detector would flag a map read racing a fold),
	// and — this being a deposit-only workload — never see a negative
	// balance through any snapshot.
	for rd := 0; rd < readers; rd++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for !stop.Load() {
				for i := 0; i < c.Replicas(); i++ {
					st := c.Replica(i).State()
					for acct, bal := range st {
						if bal < 0 {
							t.Errorf("negative balance %d for %s in a deposit-only workload", bal, acct)
							return
						}
					}
					_ = c.Replica(i).OpCount()
				}
				_ = c.ShardStates(0)
			}
		}()
	}

	// The churn: kill and recover replica 2 while ingest runs at 0 and 1.
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for !stop.Load() {
			c.Kill(2)
			time.Sleep(2 * time.Millisecond)
			if err := c.Recover(ctx, 2); err != nil {
				t.Errorf("recover: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Writers: deposits with fixed IDs so kills can never double-apply.
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				batch := make([]quicksand.Op, batchSize)
				for j := range batch {
					batch[j] = quicksand.NewOp("deposit", fmt.Sprintf("acct-%d", j%7), 1)
					batch[j].ID = quicksand.OpID(fmt.Sprintf("w%d-%d-%d", w, i, j))
				}
				if _, err := c.SubmitBatch(ctx, w%2, batch); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	writeWG.Wait()
	stop.Store(true)
	readWG.Wait()
	if t.Failed() {
		return
	}
	// Everything accepted at a live replica must converge; replica 2 may
	// have come back mid-stream, so give gossip a window to refill it.
	deadline := time.Now().Add(10 * time.Second)
	for !c.Converged() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !c.Converged() {
		t.Fatal("cluster did not converge after churn")
	}
	// The submitting replicas never died, so no accepted deposit was
	// lost: the converged total must cover every acknowledged batch.
	var want int64 = writers * perWriter * batchSize
	var got int64
	for _, bal := range c.Replica(0).State() {
		got += bal
	}
	if got != want {
		t.Fatalf("converged total = %d, want %d", got, want)
	}
}
