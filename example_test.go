package quicksand_test

// Runnable documentation for the public API: the replicated-bank story of
// §6.2 end to end, with deterministic output (the simulator's virtual
// time and seeded randomness make this a stable doctest).

import (
	"context"
	"fmt"
	"maps"

	quicksand "repro"
)

// balances is the derived state: per-account cents.
type balances map[string]int64

// exampleApp folds deposit and clear-check operations into balances.
type exampleApp struct{}

func (exampleApp) Init() balances { return balances{} }

func (exampleApp) Step(s balances, op quicksand.Op) balances {
	// Fold builds a fresh state each time, but Step receives the shared
	// accumulator; copy-on-write keeps previously returned states valid.
	ns := make(balances, len(s)+1)
	for k, v := range s {
		ns[k] = v
	}
	switch op.Kind {
	case "deposit":
		ns[op.Key] += op.Arg
	case "clear-check":
		ns[op.Key] -= op.Arg
	}
	return ns
}

// Snapshot returns a deep copy of the balances. Implementing
// quicksand.Snapshotter keeps admission O(new entries) for this
// map-backed state: the engine advances a fold checkpoint instead of
// replaying the ledger.
func (exampleApp) Snapshot(s balances) balances { return maps.Clone(s) }

// noOverdraft declines checks the local guess cannot cover and reports
// accounts below zero once merged truth catches up.
func noOverdraft() quicksand.Rule[balances] {
	return quicksand.Rule[balances]{
		Name: "no-overdraft",
		Admit: func(s balances, op quicksand.Op) bool {
			return op.Kind != "clear-check" || s[op.Key] >= op.Arg
		},
		Violated: func(s balances) []quicksand.Violation {
			var out []quicksand.Violation
			for acct, bal := range s {
				if bal < 0 {
					out = append(out, quicksand.Violation{
						Detail: fmt.Sprintf("%s overdrawn by %d¢", acct, -bal),
						Key:    acct,
						Amount: -bal,
					})
				}
			}
			return out
		},
	}
}

// Example_replicatedCheckClearing walks the paper's banking scenario on
// the public API: partitioned replicas clear checks on guesses, the
// merged truth reveals an overdraft, and the discovered violation becomes
// exactly one apology.
func Example_replicatedCheckClearing() {
	s := quicksand.NewSim(11)
	tr := quicksand.NewSimTransport(s)
	c := quicksand.New[balances](exampleApp{}, []quicksand.Rule[balances]{noOverdraft()},
		quicksand.WithTransport(tr), quicksand.WithReplicas(2))
	ctx := context.Background()

	// Open the account with $100 and let both replicas learn of it.
	if _, err := c.Submit(ctx, 0, quicksand.NewOp("deposit", "acct", 100_00)); err != nil {
		panic(err)
	}
	for !c.Converged() {
		c.GossipRound()
		s.Run()
	}

	// Partitioned replicas each clear a $70 check — each guess is locally
	// sound. The check number is the uniquifier (§6.2).
	tr.Partition([]string{"r0"}, []string{"r1"})
	for rep, no := range []int{101, 102} {
		op := quicksand.NewOp("clear-check", "acct", 70_00)
		op.ID = quicksand.CheckNumber("bank", "acct", no)
		res, err := c.Submit(ctx, rep, op)
		if err != nil {
			panic(err)
		}
		fmt.Printf("r%d clears check #%d: %v\n", rep, no, res.Accepted)
	}

	// Heal; memories flow together; the overdraft surfaces once.
	tr.Heal()
	for !c.Converged() {
		c.GossipRound()
		s.Run()
	}
	st := c.States()
	fmt.Printf("apologies: %d\n", c.Apologies.Total())
	fmt.Printf("balances agree: %v\n", st[0]["acct"] == st[1]["acct"])

	// Output:
	// r0 clears check #101: true
	// r1 clears check #102: true
	// apologies: 1
	// balances agree: true
}
