package quicksand_test

// Runnable documentation for the core library: the replicated-bank story
// of §6.2 end to end, with deterministic output (the simulator's virtual
// time and seeded randomness make this a stable doctest).

import (
	"fmt"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Example_replicatedCheckClearing walks the paper's banking scenario:
// partitioned replicas clear checks on guesses, the merged truth reveals
// an overdraft, and the designed apology (a bounce fee) fires exactly
// once.
func Example_replicatedCheckClearing() {
	s := sim.New(11)
	b := bank.New(s, core.Config{Replicas: 2}, 30_00)

	// Open the account with $100 and let both replicas learn of it.
	b.Deposit(0, "acct", 100_00, func(core.Result) {})
	s.Run()
	for !b.C.Converged() {
		b.C.GossipRound()
		s.Run()
	}

	// Partitioned replicas each clear a $70 check — each guess is locally
	// sound.
	b.C.Net().Partition([]simnet.NodeID{"r0"}, []simnet.NodeID{"r1"})
	b.ClearCheck(0, "acct", 101, 70_00, policy.AlwaysAsync(), func(r core.Result) {
		fmt.Printf("r0 clears check #101: %v\n", r.Accepted)
	})
	b.ClearCheck(1, "acct", 102, 70_00, policy.AlwaysAsync(), func(r core.Result) {
		fmt.Printf("r1 clears check #102: %v\n", r.Accepted)
	})
	s.Run()

	// Heal; memories flow together; the overdraft surfaces and the
	// compensation runs.
	b.C.Net().Heal()
	for !b.C.Converged() {
		b.C.GossipRound()
		s.Run()
	}
	fmt.Printf("bounce fees issued: %d\n", b.Bounced.Value())
	fmt.Printf("balances agree: %v\n", b.Balance(0, "acct") == b.Balance(1, "acct"))

	// Output:
	// r0 clears check #101: true
	// r1 clears check #102: true
	// bounce fees issued: 1
	// balances agree: true
}
